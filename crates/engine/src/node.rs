//! The assembled node engine: page access through PLock + LBP + Buffer
//! Fusion, transaction bookkeeping, background threads, crash and restart.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use pmp_common::sync::{sched_point, LockClass, Shutdown, TrackedMutex, TrackedRwLock};
use pmp_common::{
    Counter, Cts, EngineConfig, Gauge, GlobalTrxId, LatencyHistogram, NodeId, PageId, PmpError,
    Result, SlotId, TrxId, CSN_MAX,
};

/// Active-transaction table (begin/finish/visibility fast path).
const NODE_ACTIVE: LockClass = LockClass::new("engine.node.active");
/// Committed transactions awaiting TIT-slot recycling.
const NODE_FINISHED: LockClass = LockClass::new("engine.node.finished");
/// Root-page leaf/internal hints.
const NODE_ROOT_HINTS: LockClass = LockClass::new("engine.node.root_hints");
/// Background-thread join handles (lifecycle only).
const NODE_BG: LockClass = LockClass::new("engine.node.bg");
use pmp_io::{Completion, CompletionToken, Cqe, CqePayload, IoRing, SqeOp};
use pmp_pmfs::{PLockMode, TitRegion};
use pmp_rdma::Locality;

use crate::cts_cache::{CtsCache, MinActiveTable};
use crate::lbp::{Frame, Lbp, LoadTicket, Lookup};
use crate::page::Page;
use crate::plock_local::{LocalPLocks, NegotiationHandler, PLockGuard, ReleaseHook};
use crate::shared::Shared;
use crate::tso_client::TsoClient;
use crate::txn::Txn;
use crate::undo::UndoPtr;
use crate::version_store::VersionStore;
use crate::wal::Wal;

/// Total bound of the node's commit-timestamp cache (split evenly across
/// the cache's segments; an overflow evicts one segment, not the whole
/// cache).
const CTS_CACHE_CAPACITY: usize = 65_536;

/// Node-level meters surfaced to the benchmark harness.
#[derive(Debug, Default)]
pub struct NodeStats {
    pub commits: Counter,
    pub rollbacks: Counter,
    pub deadlock_aborts: Counter,
    pub reads: Counter,
    pub writes: Counter,
    pub lock_waits: Counter,
    /// Transactions currently open on this node (begin → finish). The
    /// gauge's high-water mark is the open-transaction ceiling the async
    /// scheduler is measured against.
    pub open_txns: Gauge,
    pub pages_loaded_storage: Counter,
    pub pages_loaded_dbp: Counter,
    pub prefetch_submitted: Counter,
    /// Per-stage commit latency (wall clock): CTS allocation, WAL group
    /// commit, TIT publish + ref collection, row CTS backfill.
    pub commit_cts_ns: LatencyHistogram,
    pub commit_wal_force_ns: LatencyHistogram,
    pub commit_tit_ns: LatencyHistogram,
    pub commit_backfill_ns: LatencyHistogram,
}

/// One live transaction's bookkeeping entry.
pub(crate) struct ActiveTrx {
    /// Current statement snapshot (shared with the `Txn`, updated per
    /// statement under read committed).
    pub snapshot: Arc<AtomicU64>,
}

/// A committed transaction whose TIT slot awaits recycling (§4.1).
struct FinishedTrx {
    slot: SlotId,
    cts: Cts,
    undo: Vec<UndoPtr>,
}

/// A primary node of the PolarDB-MP cluster.
pub struct NodeEngine {
    pub node: NodeId,
    pub shared: Arc<Shared>,
    pub cfg: EngineConfig,
    pub lbp: Lbp,
    /// Async storage submission/completion ring: every shared-storage read
    /// on the page-miss path goes through it, so the charged storage
    /// latency elapses off-thread with no LBP shard lock held.
    pub io: IoRing<Page>,
    pub plocks: Arc<LocalPLocks>,
    pub wal: Wal,
    pub tit: Arc<TitRegion>,
    pub tso: TsoClient,
    /// Per-node async transaction scheduler: parked statements release
    /// their worker thread on page-load / PLock / group-commit waits and
    /// are re-queued on wake (DESIGN.md §13).
    pub sched: Arc<crate::scheduler::Scheduler>,
    pub stats: NodeStats,
    next_trx: AtomicU64,
    active: TrackedMutex<HashMap<TrxId, ActiveTrx>>,
    finished: TrackedMutex<Vec<FinishedTrx>>,
    /// Cached peers' published min-active transaction ids (§4.3.2): a flat
    /// atomic array, so the liveness fast path is one atomic load.
    min_active_cache: MinActiveTable,
    /// Resolved commit timestamps of *finished* transactions (sharded,
    /// bounded per segment — see [`CtsCache`] for why terminal answers are
    /// safely cacheable and why eviction is segment-local).
    cts_cache: CtsCache,
    /// Node-local MVCC version store: bounded chains of committed row
    /// images that let snapshot readers resolve without undo walks or
    /// TIT/CTS fabric lookups (DESIGN.md §12).
    pub version_store: VersionStore,
    /// Root page hints: is this root currently a leaf? Lets writers acquire
    /// the X PLock directly instead of S-then-upgrade.
    root_hints: TrackedRwLock<HashMap<PageId, bool>>,
    alive: AtomicBool,
    /// Set while a graceful decommission drains: new transactions are
    /// refused, in-flight ones may finish.
    draining: AtomicBool,
    /// Stops the background threads; triggering wakes them mid-interval,
    /// so shutdown never waits out a full tick.
    shutdown: Arc<Shutdown>,
    bg: TrackedMutex<Vec<JoinHandle<()>>>,
    /// Weak self-pointer for io-ring continuations (set once in `build`,
    /// same pattern as the PLock flush hook): a completion that outlives
    /// the engine simply finds the weak dead and gives up.
    self_ref: std::sync::OnceLock<std::sync::Weak<NodeEngine>>,
}

impl std::fmt::Debug for NodeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeEngine")
            .field("node", &self.node)
            .field("alive", &self.alive.load(Ordering::Relaxed)) // lint: allow(relaxed-atomic): Debug snapshot only
            .finish_non_exhaustive()
    }
}

struct FlushHook {
    engine: std::sync::Weak<NodeEngine>,
}

impl ReleaseHook for FlushHook {
    fn before_release(&self, page: PageId) {
        if let Some(engine) = self.engine.upgrade() {
            if let Some(frame) = engine.lbp.peek(page) {
                if frame.is_dirty() {
                    engine.flush_frame(page, &frame);
                }
            }
        }
    }
}

impl NodeEngine {
    /// Start a node: register its TIT region and negotiation handler with
    /// PMFS, spawn the background min-view/recycler and flusher threads.
    pub fn start(shared: Arc<Shared>, node: NodeId) -> Arc<NodeEngine> {
        let engine = Self::build(shared, node);
        engine
            .shared
            .pmfs
            .txn
            .register_region(Arc::clone(&engine.tit));
        engine.spawn_background();
        engine
    }

    /// Build a node for crash recovery: the *old* TIT region (if any) stays
    /// registered so in-doubt transactions keep reading as active until
    /// their rollback completes; background threads stay parked. The
    /// recovery driver calls [`complete_recovery`](Self::complete_recovery)
    /// when done.
    pub fn start_for_recovery(shared: Arc<Shared>, node: NodeId) -> Arc<NodeEngine> {
        Self::build(shared, node)
    }

    /// Finish recovery: swap in the fresh TIT region (stale references to
    /// pre-crash transactions now resolve as "slot reused ⇒ visible", which
    /// is correct because every uncommitted change has been rolled back),
    /// thaw the fusion-side PLocks frozen by the crash, and start the
    /// background threads.
    pub fn complete_recovery(self: &Arc<Self>) {
        self.shared.pmfs.txn.register_region(Arc::clone(&self.tit));
        self.shared.pmfs.plock.release_all(self.node);
        // Drop locks recovery itself accumulated via lazy retention.
        self.plocks.crash_clear();
        self.shared.pmfs.plock.release_all(self.node);
        self.spawn_background();
    }

    fn build(shared: Arc<Shared>, node: NodeId) -> Arc<NodeEngine> {
        let cfg = shared.config.engine;
        let tit = Arc::new(TitRegion::new(
            Arc::clone(&shared.repl),
            node,
            cfg.tit_slots,
        ));

        let plocks = LocalPLocks::new(
            node,
            Arc::clone(&shared.pmfs.plock),
            cfg.lazy_plock_release,
            Duration::from_millis(cfg.lock_wait_timeout_ms),
        );
        shared
            .pmfs
            .plock
            .register_node(node, NegotiationHandler::new(Arc::clone(&plocks)));

        let wal = Wal::new_with_compression(
            shared.storage.redo_stream(node),
            cfg.wal_group_window_us,
            shared.config.compression,
        );
        let tso = TsoClient::new(
            Arc::clone(&shared.pmfs.txn),
            cfg.linear_lamport,
            cfg.cts_lease_max,
        );

        let engine = Arc::new(NodeEngine {
            node,
            cfg,
            lbp: Lbp::new(cfg.lbp_capacity),
            io: IoRing::new(Arc::clone(&shared.storage), cfg.io),
            plocks: Arc::clone(&plocks),
            wal,
            tit,
            tso,
            sched: Arc::new(crate::scheduler::Scheduler::new(cfg.sched_workers)),
            stats: NodeStats::default(),
            next_trx: AtomicU64::new(1),
            active: TrackedMutex::new(NODE_ACTIVE, HashMap::new()),
            finished: TrackedMutex::new(NODE_FINISHED, Vec::new()),
            min_active_cache: MinActiveTable::new(shared.config.nodes.max(64)),
            cts_cache: CtsCache::new(CTS_CACHE_CAPACITY),
            version_store: VersionStore::new(cfg.version_store_bytes),
            root_hints: TrackedRwLock::new(NODE_ROOT_HINTS, HashMap::new()),
            alive: AtomicBool::new(true),
            draining: AtomicBool::new(false),
            shutdown: Arc::new(Shutdown::new()),
            bg: TrackedMutex::new(NODE_BG, Vec::new()),
            self_ref: std::sync::OnceLock::new(),
            shared,
        });

        let _ = engine.self_ref.set(Arc::downgrade(&engine));
        plocks.set_hook(Arc::new(FlushHook {
            engine: Arc::downgrade(&engine),
        }));
        engine
    }

    fn spawn_background(self: &Arc<Self>) {
        let mut bg = self.bg.lock();
        {
            let engine = Arc::clone(self);
            let shutdown = Arc::clone(&self.shutdown);
            let interval = Duration::from_millis(self.cfg.min_view_interval_ms);
            bg.push(std::thread::spawn(move || {
                while !shutdown.is_triggered() {
                    engine.min_view_tick();
                    if shutdown.sleep_until_triggered(interval) {
                        break;
                    }
                }
            }));
        }
        {
            let engine = Arc::clone(self);
            let shutdown = Arc::clone(&self.shutdown);
            let interval = Duration::from_millis(self.cfg.flush_interval_ms);
            bg.push(std::thread::spawn(move || {
                while !shutdown.is_triggered() {
                    engine.flush_tick();
                    if shutdown.sleep_until_triggered(interval) {
                        break;
                    }
                }
            }));
        }
    }

    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    pub fn check_alive(&self) -> Result<()> {
        if self.is_alive() {
            Ok(())
        } else {
            Err(PmpError::NodeUnavailable { node: self.node })
        }
    }

    // ---- page access -----------------------------------------------------

    /// Acquire a PLock on `page` (node-level, lazy release).
    pub fn plock(&self, page: PageId, mode: PLockMode) -> Result<PLockGuard<'_>> {
        self.check_alive()?;
        self.plocks.acquire(page, mode)
    }

    /// Get the page's frame, loading/refreshing through Buffer Fusion and
    /// shared storage as needed. Caller must hold a PLock on the page.
    pub fn frame(&self, page_id: PageId) -> Result<Arc<Frame>> {
        match self.lbp.lookup(page_id) {
            Lookup::Hit(frame) => {
                if !frame.is_valid() {
                    self.refresh_frame(page_id, &frame)?;
                }
                Ok(frame)
            }
            Lookup::MustLoad(ticket) => self.start_load(page_id, ticket),
        }
    }

    /// Load a page we have no frame for: DBP RPC first, then shared
    /// storage through the io ring + DBP registration (§4.2 "page
    /// access"). The appointed loader submits an SQE and blocks on its
    /// completion *without* holding the LBP shard lock, so an LBP shard
    /// sustains as many in-flight storage loads as the ring allows.
    fn start_load(&self, page_id: PageId, ticket: LoadTicket) -> Result<Arc<Frame>> {
        let flag = Arc::new(AtomicBool::new(true));
        let buffer = &self.shared.pmfs.buffer;
        if let Some((page, llsn)) = buffer.lookup_or_register(self.node, page_id, Arc::clone(&flag))
        {
            self.stats.pages_loaded_dbp.inc();
            self.wal.observe_llsn(llsn);
            // No resident frame ⇒ no invalidation signal since eviction:
            // fence the page's chains along with adopting the DBP image.
            self.version_store.invalidate_page(page_id);
            return Ok(self.lbp.finish_load(page_id, ticket, (*page).clone(), flag));
        }
        // On a scheduler worker: don't block on the CQE — install the
        // parker as the continuation and park the statement. The re-run
        // finds the frame resident (Hit) or the load's error in the parker.
        if let Some(parker) = crate::scheduler::async_parker() {
            let weak = self.self_ref();
            if let Err(e) = self.io.submit_with(
                SqeOp::ReadPage(page_id),
                page_id.0,
                Box::new(move |cqe| {
                    if let Err(e) = Self::complete_storage_load(&weak, page_id, ticket, flag, cqe) {
                        parker.set_error(e);
                    }
                    parker.wake();
                }),
            ) {
                self.lbp.abort_load(page_id, ticket);
                return Err(e);
            }
            return Err(PmpError::WouldBlock);
        }
        let weak = self.self_ref();
        let completion: Completion<Result<Arc<Frame>>> = Completion::new();
        let done = completion.clone();
        if let Err(e) = self.io.submit_with(
            SqeOp::ReadPage(page_id),
            page_id.0,
            Box::new(move |cqe| {
                done.complete(Self::complete_storage_load(
                    &weak, page_id, ticket, flag, cqe,
                ));
            }),
        ) {
            self.lbp.abort_load(page_id, ticket);
            return Err(e);
        }
        completion.wait()
    }

    /// Resolve a storage-read completion into the LBP sentinel the loader
    /// appointed. Runs on an io-ring worker (demand loads) or wherever the
    /// continuation fires (prefetch); every exit either installs the frame
    /// or aborts the sentinel, so a completion can never leak a `Loading`
    /// slot.
    fn complete_storage_load(
        weak: &std::sync::Weak<NodeEngine>,
        page_id: PageId,
        ticket: LoadTicket,
        flag: Arc<AtomicBool>,
        cqe: Cqe<Page>,
    ) -> Result<Arc<Frame>> {
        let Some(engine) = weak.upgrade() else {
            // Engine torn down mid-flight; nobody is waiting on the
            // sentinel either (the pool is gone with the engine).
            return Err(PmpError::aborted("node engine dropped during page load"));
        };
        match cqe.result {
            Ok(CqePayload::Page(Some(stored))) => {
                engine.stats.pages_loaded_storage.inc();
                // Same fence as the DBP-hit load path: the node had no
                // frame, so chains for this page have no validity signal.
                engine.version_store.invalidate_page(page_id);
                let (page, llsn) = engine.shared.pmfs.buffer.register_push(
                    engine.node,
                    page_id,
                    Arc::clone(&stored),
                    stored.llsn,
                    Arc::clone(&flag),
                );
                engine.wal.observe_llsn(llsn);
                Ok(engine
                    .lbp
                    .finish_load(page_id, ticket, (*page).clone(), flag))
            }
            Ok(CqePayload::Page(None)) => {
                engine.lbp.abort_load(page_id, ticket);
                Err(PmpError::internal(format!(
                    "{page_id} missing from shared storage"
                )))
            }
            Ok(CqePayload::Cancelled) => {
                engine.lbp.abort_load(page_id, ticket);
                Err(PmpError::NodeUnavailable { node: engine.node })
            }
            Ok(_) => {
                engine.lbp.abort_load(page_id, ticket);
                Err(PmpError::internal("unexpected payload for a page read"))
            }
            Err(e) => {
                engine.lbp.abort_load(page_id, ticket);
                Err(e)
            }
        }
    }

    fn self_ref(&self) -> std::sync::Weak<NodeEngine> {
        self.self_ref
            .get()
            .cloned()
            .unwrap_or_else(std::sync::Weak::new)
    }

    /// Speculatively start loading `page_id` in the background (B-tree
    /// sibling / sequential-scan prefetch). Returns the submission token if
    /// a storage read is actually in flight — the caller may
    /// [`cancel_prefetch`](Self::cancel_prefetch) it — and `None` when the
    /// page is already resident, already being loaded, satisfiable from the
    /// DBP without storage latency, or the node is down.
    pub fn prefetch(&self, page_id: PageId) -> Option<CompletionToken> {
        if page_id == PageId::NULL || !self.is_alive() {
            return None;
        }
        let ticket = self.lbp.try_appoint(page_id)?;
        let flag = Arc::new(AtomicBool::new(true));
        let buffer = &self.shared.pmfs.buffer;
        if let Some((page, llsn)) = buffer.lookup_or_register(self.node, page_id, Arc::clone(&flag))
        {
            self.stats.pages_loaded_dbp.inc();
            self.wal.observe_llsn(llsn);
            self.version_store.invalidate_page(page_id);
            self.lbp.finish_load(page_id, ticket, (*page).clone(), flag);
            return None;
        }
        let weak = self.self_ref();
        match self.io.submit_with(
            SqeOp::ReadPage(page_id),
            page_id.0,
            Box::new(move |cqe| {
                // A demand `frame()` racing this prefetch waits on the LBP
                // sentinel and is woken by finish_load/abort_load inside.
                let _ = Self::complete_storage_load(&weak, page_id, ticket, flag, cqe);
            }),
        ) {
            Ok(token) => {
                self.stats.prefetch_submitted.inc();
                Some(token)
            }
            Err(_) => {
                self.lbp.abort_load(page_id, ticket);
                None
            }
        }
    }

    /// Cancel a still-queued prefetch (scan abandoned before reaching the
    /// page). Returns whether the SQE was reaped from the queue; an entry
    /// already claimed by a worker completes normally, which is harmless.
    pub fn cancel_prefetch(&self, token: CompletionToken) -> bool {
        self.io.cancel(token)
    }

    /// Refresh an invalidated frame from the DBP (one-sided fast path,
    /// falling back to the RPC + storage path).
    fn refresh_frame(&self, page_id: PageId, frame: &Arc<Frame>) -> Result<()> {
        if frame.is_dirty() {
            // Dirty implies we hold the X PLock, so our copy IS the latest;
            // the invalidation must have come from a DBP failure wiping the
            // holder directory. Re-register our authoritative copy.
            let (snapshot, llsn) = {
                let page = frame.page.read();
                (page.clone(), page.llsn)
            };
            self.shared.pmfs.buffer.register_push(
                self.node,
                page_id,
                Arc::new(snapshot),
                llsn,
                Arc::clone(&frame.valid),
            );
            frame.set_valid();
            return Ok(());
        }
        // A remote writer modified this page (its push cleared our valid
        // flag): fence the page's version chains before adopting the newer
        // image (DESIGN.md §12).
        self.version_store.invalidate_page(page_id);
        sched_point("dbp.refresh.fence-adopt");
        let buffer = &self.shared.pmfs.buffer;
        let (page, llsn) = match buffer.fetch(self.node, page_id) {
            Some(hit) => {
                self.stats.pages_loaded_dbp.inc();
                hit
            }
            None => match buffer.lookup_or_register(self.node, page_id, Arc::clone(&frame.valid)) {
                Some(hit) => {
                    self.stats.pages_loaded_dbp.inc();
                    hit
                }
                None => {
                    let stored = self.io.read_page(page_id)?.ok_or_else(|| {
                        PmpError::internal(format!("{page_id} missing from shared storage"))
                    })?;
                    self.stats.pages_loaded_storage.inc();
                    let (p, l) = buffer.register_push(
                        self.node,
                        page_id,
                        Arc::clone(&stored),
                        stored.llsn,
                        Arc::clone(&frame.valid),
                    );
                    (p, l)
                }
            },
        };
        self.wal.observe_llsn(llsn);
        {
            let mut guard = frame.page.write();
            if page.llsn >= guard.llsn {
                *guard = (*page).clone();
            }
        }
        frame.set_valid();
        Ok(())
    }

    /// Install a freshly created page (B-tree split) into the LBP and the
    /// DBP. Logs covering the page must already be durable (WAL rule).
    pub fn install_new_page(&self, page: Page) -> Arc<Frame> {
        let page_id = page.id;
        let flag = Arc::new(AtomicBool::new(true));
        self.shared.pmfs.buffer.register_push(
            self.node,
            page_id,
            Arc::new(page.clone()),
            page.llsn,
            Arc::clone(&flag),
        );
        match self.lbp.lookup(page_id) {
            Lookup::MustLoad(ticket) => self.lbp.finish_load(page_id, ticket, page, flag),
            Lookup::Hit(frame) => frame, // should not happen for fresh ids
        }
    }

    /// Force logs covering the frame, push it to the DBP, clear dirty.
    /// Dirty implies this node holds the page's X PLock, so the push is
    /// race-free; stale pushes are rejected by the DBP's LLSN check.
    pub fn flush_frame(&self, page_id: PageId, frame: &Arc<Frame>) {
        let (snapshot, seen) = {
            let page = frame.page.read();
            (page.clone(), frame.dirty_state())
        };
        if !seen.dirty {
            return;
        }
        if self.wal.force(seen.newest_lsn) < seen.newest_lsn {
            // Crash truncated the log under the flush: the image is no
            // longer covered by durable redo, so pushing it to the DBP
            // would violate the WAL rule. The dead node's dirty state
            // dies with it; recovery rebuilds from what is durable.
            return;
        }
        self.shared.pmfs.buffer.push(
            self.node,
            page_id,
            Arc::new(snapshot.clone()),
            snapshot.llsn,
        );
        frame.clear_dirty_if_unchanged(seen);
    }

    pub fn is_full(&self, page: &Page) -> bool {
        if page.is_leaf() {
            page.entry_count() >= self.cfg.leaf_capacity
        } else {
            page.entry_count() >= self.cfg.internal_capacity
        }
    }

    pub fn root_hint(&self, root: PageId) -> bool {
        *self.root_hints.read().get(&root).unwrap_or(&true)
    }

    pub fn set_root_hint(&self, root: PageId, is_leaf: bool) {
        let stale = { self.root_hints.read().get(&root) != Some(&is_leaf) };
        if stale {
            self.root_hints.write().insert(root, is_leaf);
        }
    }

    // ---- transaction bookkeeping ------------------------------------------

    /// Begin a transaction: allocate a local trx id and a TIT slot (§4.1).
    pub fn begin(self: &Arc<Self>) -> Result<Txn> {
        self.check_alive()?;
        if self.draining.load(Ordering::Acquire) {
            return Err(PmpError::NodeUnavailable { node: self.node });
        }
        // PMFS quorum gate: with too many replicas down every fusion verb
        // would read a potentially-stale minority — refuse new transactions
        // until an operator re-seats a replica (DESIGN.md §15).
        if !self.shared.repl.quorum_ok() {
            return Err(PmpError::FusionUnavailable {
                detail: format!(
                    "PMFS replica quorum lost ({}/{} alive, quorum {})",
                    self.shared.repl.alive_replicas(),
                    self.shared.repl.replicas(),
                    self.shared.repl.quorum(),
                ),
            });
        }
        let trx_id = TrxId(self.next_trx.fetch_add(1, Ordering::Relaxed)); // lint: allow(relaxed-atomic): monotonic transaction-id allocator
                                                                           // Slot exhaustion: wait on the TIT free-list condvar (woken by every
                                                                           // release) instead of polling — a freed slot is picked up
                                                                           // immediately rather than after a fixed poll interval.
        let (slot, version) = self
            .tit
            .allocate_timeout(Duration::from_millis(self.cfg.lock_wait_timeout_ms))
            .ok_or_else(|| PmpError::internal("TIT slots exhausted"))?;
        let gid = GlobalTrxId {
            node: self.node,
            trx: trx_id,
            slot,
            version,
        };
        let snapshot = Arc::new(AtomicU64::new(self.tso.snapshot().0));
        self.active.lock().insert(
            trx_id,
            ActiveTrx {
                snapshot: Arc::clone(&snapshot),
            },
        );
        self.stats.open_txns.inc();
        Ok(Txn::new(Arc::clone(self), gid, snapshot))
    }

    /// A committed writer hands its slot to the recycler.
    pub(crate) fn finish_committed(&self, gid: GlobalTrxId, cts: Cts, undo: Vec<UndoPtr>) {
        self.active.lock().remove(&gid.trx);
        self.finished.lock().push(FinishedTrx {
            slot: gid.slot,
            cts,
            undo,
        });
        self.stats.open_txns.dec();
        self.stats.commits.inc();
    }

    /// A read-only transaction finishes: release the slot immediately.
    pub(crate) fn finish_readonly(&self, gid: GlobalTrxId) {
        self.active.lock().remove(&gid.trx);
        self.tit.release(gid.slot);
        self.stats.open_txns.dec();
        self.stats.commits.inc();
    }

    /// A rolled-back transaction: slot released (rows were restored first),
    /// undo purged right away.
    pub(crate) fn finish_aborted(&self, gid: GlobalTrxId, undo: &[UndoPtr]) {
        self.active.lock().remove(&gid.trx);
        self.tit.release(gid.slot);
        self.shared.undo.purge(undo);
        self.stats.open_txns.dec();
        self.stats.rollbacks.inc();
    }

    // ---- visibility helpers -----------------------------------------------

    /// Cache-only CTS lookup — no TIT traffic, no fabric verbs. Used by
    /// commit-time version publication, which must not add round trips to
    /// the commit path.
    pub(crate) fn cached_cts(&self, gid: GlobalTrxId) -> Option<Cts> {
        self.cts_cache.get(&gid)
    }

    /// Resolve a transaction's CTS (Algorithm 1, TIT half), caching
    /// terminal answers. Active transactions (`CSN_MAX`) are never cached.
    pub fn trx_cts(&self, gid: GlobalTrxId) -> Cts {
        if let Some(cts) = self.cts_cache.get(&gid) {
            return cts;
        }
        let cts = self.shared.pmfs.txn.trx_cts(self.node, gid);
        if cts != CSN_MAX {
            self.cts_cache.insert(gid, cts);
        }
        cts
    }

    /// Is the transaction still active (row-lock liveness check)?
    pub fn trx_is_active(&self, gid: GlobalTrxId) -> bool {
        if gid.node == self.node {
            // Local transactions: the active table is authoritative & free.
            return self.active.lock().contains_key(&gid.trx);
        }
        if gid.trx.0 < self.min_active_of(gid.node) {
            return false;
        }
        self.trx_cts(gid) == CSN_MAX
    }

    /// Cached published min-active transaction id of a peer (0 = unknown).
    pub fn min_active_of(&self, node: NodeId) -> u64 {
        if node == self.node {
            return 0; // local liveness goes through the active table
        }
        self.min_active_cache.get(node)
    }

    // ---- background work ---------------------------------------------------

    /// One pass of the min-view protocol (§4.1 "TIT recycle"): report our
    /// minimal view, recycle finished slots under the broadcast global
    /// minimum, publish our min-active trx id, refresh peer caches.
    pub fn min_view_tick(&self) {
        if !self.is_alive() {
            return;
        }
        let fusion = &self.shared.pmfs.txn;

        // Minimal view among active transactions, else current TSO.
        let local_min = {
            let active = self.active.lock();
            active
                .values()
                .map(|a| Cts(a.snapshot.load(Ordering::Acquire)))
                .min()
        };
        let local_min = match local_min {
            Some(v) => v,
            None => fusion.current_cts(),
        };
        fusion.report_min_view(self.node, local_min);

        // Recycle finished slots whose CTS every view can already see.
        let global_min = self.tit.load_global_min_view();
        {
            let mut fin = self.finished.lock();
            let undo = &self.shared.undo;
            let tit = &self.tit;
            fin.retain(|f| {
                if f.cts < global_min {
                    tit.release(f.slot);
                    undo.purge(&f.undo);
                    false
                } else {
                    true
                }
            });
        }

        // Trim version-store chains below the cluster min-active snapshot:
        // no snapshot at or above `global_min` can ever need a row image
        // older than the newest version visible at that floor (§12).
        if global_min.0 != 0 {
            self.version_store.gc_below(global_min);
        }

        // Publish our min-active transaction id for peers' fast paths.
        let min_active = self
            .active
            .lock()
            .keys()
            .map(|t| t.0)
            .min()
            .unwrap_or_else(|| self.next_trx.load(Ordering::Relaxed)); // lint: allow(relaxed-atomic): monotonic allocator; a stale (lower) read keeps min-active conservative
        self.tit.publish_min_active_trx(min_active);

        // Refresh our cache of peers' published values: every peer's cell
        // reads through one doorbell batch (one charged round trip).
        let mut batch = self.shared.repl.batch();
        for peer in fusion.nodes() {
            if peer == self.node {
                continue;
            }
            if let Some(region) = fusion.region(peer) {
                let v = region.read_min_active_trx_batched(&mut batch, Locality::Remote);
                self.min_active_cache.set(peer, v);
            }
        }
        batch.flush();
    }

    /// One pass of the background flusher: push dirty pages to the DBP and
    /// keep the LBP within capacity (§4.2). Also takes opportunistic
    /// quiesced checkpoints so recovery replays only a log tail.
    pub fn flush_tick(&self) {
        if !self.is_alive() {
            return;
        }
        for (page_id, frame) in self.lbp.dirty_frames() {
            self.flush_frame(page_id, &frame);
        }
        while self.lbp.over_capacity() {
            let evicted = self.lbp.evict(64);
            if evicted.is_empty() {
                break;
            }
            for page_id in evicted {
                self.shared.pmfs.buffer.unregister(self.node, page_id);
            }
        }
        self.maybe_checkpoint();
    }

    /// Flush all dirty frames without the eviction/checkpoint machinery
    /// (test helper: make an in-flight transaction's footprint durable
    /// without taking a checkpoint past it).
    pub fn flush_frame_all_for_test(&self) {
        for (page_id, frame) in self.lbp.dirty_frames() {
            self.flush_frame(page_id, &frame);
        }
    }

    /// Quiesced checkpoint: when this node has no active transactions, no
    /// dirty frames and no unsynced log, every outcome at or below the
    /// durable watermark is resolved and every page effect has been pushed,
    /// so recovery may skip everything before it. (Transactions spanning a
    /// checkpoint are impossible by construction — no ARIES active-trx
    /// table needed.)
    pub fn maybe_checkpoint(&self) {
        let stream = self.wal.stream();
        let durable = stream.durable_lsn();
        if stream.end_lsn() != durable {
            return; // unsynced tail
        }
        if !self.active.lock().is_empty() {
            return;
        }
        if !self.lbp.dirty_frames().is_empty() {
            return;
        }
        // Re-check the watermark: anything appended since the first read
        // belongs after this checkpoint anyway.
        stream.set_checkpoint(durable);
    }

    // ---- lifecycle ---------------------------------------------------------

    /// Quiesce after administrative work: flush dirty pages and hand all
    /// idle PLocks back to Lock Fusion, so peers' first accesses are plain
    /// grants instead of negotiations.
    pub fn quiesce(&self) {
        self.flush_tick();
        self.plocks.release_idle();
    }

    /// Graceful shutdown of background threads (keeps all state intact).
    /// Also stops the async scheduler: sessions still holding a parker keep
    /// working — a stopped scheduler runs wakes inline on the waker's
    /// thread instead of a pool worker.
    pub fn stop_background(&self) {
        self.sched.stop();
        self.shutdown.trigger();
        let mut bg = self.bg.lock();
        for t in bg.drain(..) {
            let _ = t.join();
        }
    }

    /// Graceful decommission (scale-in): wait for local transactions to
    /// drain, flush everything, hand back every PLock, release TIT slots
    /// and leave the cluster. Data remains fully available to the other
    /// nodes through the DBP and shared storage. Returns an error if
    /// transactions are still active after `drain` elapses.
    pub fn decommission(&self, drain: Duration) -> Result<()> {
        self.check_alive()?;
        // Refuse new transactions but let in-flight ones run to completion
        // (commit or rollback) against a fully functional node.
        self.draining.store(true, Ordering::Release);
        // lint: allow(raw-instant): real-time drain deadline for decommission
        let deadline = std::time::Instant::now() + drain;
        while !self.active.lock().is_empty() {
            // lint: allow(raw-instant): real-time drain deadline for decommission
            if std::time::Instant::now() > deadline {
                self.draining.store(false, Ordering::Release);
                return Err(PmpError::aborted(
                    "active transactions did not drain before decommission",
                ));
            }
            // Transactions finish on their own threads; there is no condvar
            // to park on, and decommission is an administrative slow path.
            // lint: allow(raw-sleep): administrative drain poll, not a data path
            std::thread::sleep(Duration::from_millis(5));
        }
        self.alive.store(false, Ordering::Release);
        self.stop_background();
        // Flush every dirty page (forces logs first), then give up locks.
        for (page_id, frame) in self.lbp.dirty_frames() {
            self.flush_frame(page_id, &frame);
        }
        self.plocks.release_idle();
        self.plocks.crash_clear();
        self.shared.pmfs.plock.release_all(self.node);
        self.shared.pmfs.plock.unregister_node(self.node);
        // Finished slots may still be above the global min view; releasing
        // them is safe because their row CTS values were backfilled and any
        // stale reference resolves as "recycled ⇒ visible", which is correct
        // for committed work.
        let mut fin = self.finished.lock();
        for f in fin.drain(..) {
            self.tit.release(f.slot);
            self.shared.undo.purge(&f.undo);
        }
        drop(fin);
        self.shared.pmfs.txn.unregister_region(self.node);
        self.wal.force(self.wal.stream().end_lsn());
        Ok(())
    }

    /// Simulate a crash: volatile state vanishes (LBP, local PLock table,
    /// active transactions, unsynced log tail); the TIT region stays
    /// registered so peers keep seeing in-doubt transactions as active;
    /// fusion-side PLocks stay frozen until recovery (§5.5).
    pub fn crash(&self) {
        self.alive.store(false, Ordering::Release);
        self.stop_background();
        self.shared.pmfs.plock.unregister_node(self.node);
        self.wal.stream().crash();
        // Transactions parked in the group-commit window must learn the log
        // tail is gone: fire their force callbacks with the truncated
        // watermark so their re-run observes forced < end and aborts.
        self.wal.drain_pending_on_crash();
        // Queued SQEs complete as Cancelled, which aborts their LBP
        // sentinels before the wipe below; loads a worker already claimed
        // finish against the wiped pool, where the wipe-generation check in
        // `finish_load` turns the install into a no-op.
        self.io.cancel_queued();
        self.lbp.clear();
        self.version_store.clear();
        self.plocks.crash_clear();
        {
            let mut active = self.active.lock();
            for _ in active.drain() {
                self.stats.open_txns.dec();
            }
        }
        self.finished.lock().clear();
    }
}

impl Drop for NodeEngine {
    fn drop(&mut self) {
        self.sched.stop();
        self.shutdown.trigger();
        let mut bg = self.bg.lock();
        for t in bg.drain(..) {
            let _ = t.join();
        }
    }
}
