//! Node-side PLock management: reference counting, lazy release and
//! negotiation handling, §4.3.1.
//!
//! "Instead of releasing its PLock back to Lock Fusion immediately after
//! use, a node decreases the reference count for the PLock. The lock
//! becomes available for release once this count drops to zero, but it is
//! still temporarily retained by the node. If the same node needs to
//! acquire the PLock again, and the requested lock type is not stronger
//! than the currently held type, the PLock can be granted locally."
//!
//! When Lock Fusion sends a negotiation message, local re-granting is
//! disabled for that page ("it cannot autonomously guarantee this PLock for
//! its internal transactions") and the lock is handed back — after pushing
//! the page to the DBP if dirty, which the engine performs through the
//! [`ReleaseHook`] — as soon as the reference count drains.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pmp_common::sync::{sched_point, LockClass, TrackedCondvar, TrackedMutex, TrackedMutexGuard};
use pmp_common::{Counter, NodeId, PageId, PmpError, Result};
use pmp_pmfs::{PLockFusion, PLockMode, ReleaseRequester};

use crate::scheduler::{self, Parker};

/// One shard of the node's local PLock table. All fusion traffic
/// (acquire/release, both RPC-priced) happens with the shard lock dropped,
/// and at most one shard lock is ever held at a time (same-class nesting
/// would trip the tracked-lock layer).
const LOCAL_ENTRIES: LockClass = LockClass::new("engine.plock_local.entries");
/// The release-hook slot (taken only to clone the `Arc`).
const LOCAL_HOOK: LockClass = LockClass::new("engine.plock_local.hook");

/// Number of table shards. Power of two so the hash can mask; mirrors the
/// LBP's sharding so a hot page's PLock chatter and frame traffic land on
/// independent locks from unrelated pages'.
const SHARD_COUNT: usize = 16;

/// Fibonacci multiplier spreads (often sequential) page ids across shards.
const HASH_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn shard_index(page: PageId) -> usize {
    (page.0.wrapping_mul(HASH_MULT) >> 32) as usize & (SHARD_COUNT - 1)
}

/// One shard: its own entry map and negotiation/drain condvar, so waiters
/// for one page never contend with or get woken by unrelated pages that
/// hash elsewhere.
struct LockShard {
    state: TrackedMutex<ShardState>,
    cv: TrackedCondvar,
}

/// A parked async transaction's wake hook (re-enqueues its continuation).
type ShardWaker = Box<dyn FnOnce() + Send>;

struct ShardState {
    entries: HashMap<PageId, Entry>,
    /// Parked async acquirers; drained and fired at every state change the
    /// condvar waiters are notified of. Spurious wakes are fine — a woken
    /// transaction just re-runs its acquire.
    wakers: Vec<ShardWaker>,
}

/// Wake everything parked on the shard. The async wakers must fire with
/// the shard lock *dropped*: a stopped scheduler runs woken continuations
/// inline, and the re-run statement may take this same shard lock.
fn notify_shard(mut st: TrackedMutexGuard<'_, ShardState>, shard: &LockShard) {
    let wakers = std::mem::take(&mut st.wakers);
    drop(st);
    shard.cv.notify_all();
    for w in wakers {
        w();
    }
}

/// Engine callback run just before a PLock is handed back to Lock Fusion:
/// force logs + push the page to the DBP if it is dirty (§4.3.1).
pub trait ReleaseHook: Send + Sync {
    fn before_release(&self, page: PageId);
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    /// A fusion acquire is in flight on some thread.
    Acquiring,
    /// Lock held from fusion's perspective.
    Held,
}

#[derive(Debug)]
struct Entry {
    state: EntryState,
    mode: PLockMode,
    refcount: u32,
    /// Lock Fusion asked us to give this lock back; no local re-grants.
    negotiation_pending: bool,
}

#[derive(Debug, Default)]
pub struct LocalPLockStats {
    pub local_grants: Counter,
    pub fusion_acquires: Counter,
    pub negotiated_releases: Counter,
    pub eager_releases: Counter,
}

/// The node's local PLock table, sharded by page id.
pub struct LocalPLocks {
    node: NodeId,
    fusion: Arc<PLockFusion>,
    shards: Box<[LockShard]>,
    hook: TrackedMutex<Option<Arc<dyn ReleaseHook>>>,
    /// Lazy release enabled (ablation switch, §4.3.1).
    lazy: bool,
    timeout: Duration,
    stats: LocalPLockStats,
}

impl std::fmt::Debug for LocalPLocks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalPLocks")
            .field("node", &self.node)
            .field("lazy", &self.lazy)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// RAII guard for one reference on a held PLock.
pub struct PLockGuard<'a> {
    owner: &'a LocalPLocks,
    page: PageId,
    pub mode: PLockMode,
}

impl Drop for PLockGuard<'_> {
    fn drop(&mut self) {
        self.owner.unref(self.page);
    }
}

impl LocalPLocks {
    pub fn new(node: NodeId, fusion: Arc<PLockFusion>, lazy: bool, timeout: Duration) -> Arc<Self> {
        let shards = (0..SHARD_COUNT)
            .map(|_| LockShard {
                state: TrackedMutex::new(
                    LOCAL_ENTRIES,
                    ShardState {
                        entries: HashMap::new(),
                        wakers: Vec::new(),
                    },
                ),
                cv: TrackedCondvar::new(),
            })
            .collect();
        Arc::new(LocalPLocks {
            node,
            fusion,
            shards,
            hook: TrackedMutex::new(LOCAL_HOOK, None),
            lazy,
            timeout,
            stats: LocalPLockStats::default(),
        })
    }

    #[inline]
    fn shard(&self, page: PageId) -> &LockShard {
        &self.shards[shard_index(page)]
    }

    pub fn set_hook(&self, hook: Arc<dyn ReleaseHook>) {
        *self.hook.lock() = Some(hook);
    }

    pub fn stats(&self) -> &LocalPLockStats {
        &self.stats
    }

    /// Acquire `mode` on `page`. Returns a guard whose drop decrements the
    /// reference count.
    ///
    /// On a scheduler worker (lazy mode only) the wait points *park* the
    /// calling transaction instead of blocking: the fusion RPC moves to the
    /// scheduler's blocking pool and the call returns
    /// [`PmpError::WouldBlock`]; the statement is re-run when the shard
    /// changes state. Everywhere else this blocks as before.
    pub fn acquire(self: &Arc<Self>, page: PageId, mode: PLockMode) -> Result<PLockGuard<'_>> {
        if self.lazy {
            if let Some(parker) = scheduler::async_parker() {
                return self.acquire_async(page, mode, &parker);
            }
        }
        self.acquire_blocking(page, mode)
    }

    fn acquire_blocking(&self, page: PageId, mode: PLockMode) -> Result<PLockGuard<'_>> {
        // lint: allow(raw-instant): condvar deadline for the lock-wait timeout
        let deadline = Instant::now() + self.timeout;
        let shard = self.shard(page);
        let mut st = shard.state.lock();
        loop {
            match st.entries.get_mut(&page) {
                None => {
                    // Become the acquirer.
                    st.entries.insert(
                        page,
                        Entry {
                            state: EntryState::Acquiring,
                            mode,
                            refcount: 0,
                            negotiation_pending: false,
                        },
                    );
                    drop(st);

                    self.stats.fusion_acquires.inc();
                    let res = self.fusion.acquire(self.node, page, mode, self.timeout);

                    st = shard.state.lock();
                    match res {
                        Ok(()) => {
                            if st.entries.get_mut(&page).is_none() {
                                // `crash_clear` wiped the table while the
                                // fusion call was in flight: the node crashed
                                // under us. Hand the surprise grant straight
                                // back so fusion doesn't record a hold no
                                // local entry tracks (recovery's release_all
                                // may already have run), and fail the caller.
                                drop(st);
                                self.fusion.release(self.node, page);
                                return Err(PmpError::NodeUnavailable { node: self.node });
                            }
                            let e = st.entries.get_mut(&page).expect("checked above");
                            e.state = EntryState::Held;
                            e.mode = mode;
                            e.refcount = 1;
                            notify_shard(st, shard);
                            return Ok(PLockGuard {
                                owner: self,
                                page,
                                mode,
                            });
                        }
                        Err(e) => {
                            st.entries.remove(&page);
                            notify_shard(st, shard);
                            return Err(e);
                        }
                    }
                }
                Some(entry) => match entry.state {
                    EntryState::Acquiring => {
                        // Someone is talking to fusion; wait for the verdict.
                        if shard.cv.wait_until(&mut st, deadline).timed_out() {
                            return Err(PmpError::LockWaitTimeout);
                        }
                    }
                    EntryState::Held => {
                        let can_local = entry.mode.covers(mode)
                            && !entry.negotiation_pending
                            && (self.lazy || entry.refcount > 0);
                        if can_local {
                            entry.refcount += 1;
                            self.stats.local_grants.inc();
                            return Ok(PLockGuard {
                                owner: self,
                                page,
                                mode,
                            });
                        }
                        // Either a negotiation forbids local grants, or we
                        // need a stronger mode. Wait for the entry to drain
                        // and be released, then retry through fusion (FIFO
                        // fairness, §4.3.1).
                        if entry.refcount == 0 {
                            // Drain it ourselves.
                            let mode_held = entry.mode;
                            entry.state = EntryState::Acquiring; // block others
                            drop(st);
                            self.hand_back(page, mode_held);
                            st = shard.state.lock();
                            // hand_back removed the entry; retry the loop.
                            shard.cv.notify_all();
                        } else if shard.cv.wait_until(&mut st, deadline).timed_out() {
                            return Err(PmpError::LockWaitTimeout);
                        }
                    }
                },
            }
        }
    }

    /// The parking variant of [`acquire`](Self::acquire): every wait the
    /// blocking path spends on the shard condvar instead registers a waker
    /// and returns [`PmpError::WouldBlock`], and the fusion acquire RPC runs
    /// on the scheduler's blocking pool with the transaction parked.
    ///
    /// Waker registration happens under the shard lock and every state
    /// change notifies under that same lock, so a wake can't be missed:
    /// whatever changes after we registered fires our waker, and whatever
    /// changed before is visible to the re-run. The lock-wait deadline
    /// survives park/wake cycles in the parker's `plock_wait` slot; a
    /// deadline timer backstops wakes lost to node crashes.
    fn acquire_async(
        self: &Arc<Self>,
        page: PageId,
        mode: PLockMode,
        parker: &Arc<Parker>,
    ) -> Result<PLockGuard<'_>> {
        let shard = self.shard(page);
        let mut st = shard.state.lock();
        loop {
            match st.entries.get_mut(&page) {
                None => {
                    st.entries.insert(
                        page,
                        Entry {
                            state: EntryState::Acquiring,
                            mode,
                            refcount: 0,
                            negotiation_pending: false,
                        },
                    );
                    drop(st);
                    self.stats.fusion_acquires.inc();
                    let this = Arc::clone(self);
                    let wake = Arc::clone(parker);
                    parker.spawn_blocking(Box::new(move || {
                        let res = this.fusion.acquire(this.node, page, mode, this.timeout);
                        let shard = this.shard(page);
                        let mut st = shard.state.lock();
                        let mut surprise_grant = false;
                        match res {
                            Ok(()) => match st.entries.get_mut(&page) {
                                Some(e) => {
                                    // Install as a lazily retained hold; the
                                    // woken transaction re-grants locally.
                                    e.state = EntryState::Held;
                                    e.mode = mode;
                                }
                                // crash_clear raced the fusion call (see the
                                // blocking path): hand the grant back.
                                None => surprise_grant = true,
                            },
                            Err(e) => {
                                st.entries.remove(&page);
                                wake.set_error(e);
                            }
                        }
                        notify_shard(st, shard);
                        if surprise_grant {
                            this.fusion.release(this.node, page);
                            wake.set_error(PmpError::NodeUnavailable { node: this.node });
                        }
                        wake.wake();
                    }));
                    // Guaranteed wake from the pool job (the fusion acquire
                    // has its own timeout) — no deadline timer needed.
                    return Err(PmpError::WouldBlock);
                }
                Some(entry) => match entry.state {
                    EntryState::Acquiring => {
                        self.park_on_shard(&mut st, parker, page)?;
                        return Err(PmpError::WouldBlock);
                    }
                    EntryState::Held => {
                        let can_local = entry.mode.covers(mode)
                            && !entry.negotiation_pending
                            && (self.lazy || entry.refcount > 0);
                        if can_local {
                            entry.refcount += 1;
                            self.stats.local_grants.inc();
                            parker.clear_plock_wait();
                            return Ok(PLockGuard {
                                owner: self.as_ref(),
                                page,
                                mode,
                            });
                        }
                        if entry.refcount == 0 {
                            // Drain it ourselves, inline: the hook force and
                            // the release RPC are bounded (no peer waits).
                            let mode_held = entry.mode;
                            entry.state = EntryState::Acquiring;
                            drop(st);
                            self.hand_back(page, mode_held);
                            st = shard.state.lock();
                            shard.cv.notify_all();
                        } else {
                            self.park_on_shard(&mut st, parker, page)?;
                            return Err(PmpError::WouldBlock);
                        }
                    }
                },
            }
        }
    }

    /// Register `parker` on the shard's waker list, keeping the lock-wait
    /// deadline across park/wake cycles. Fails with `LockWaitTimeout` once
    /// the deadline has passed (the waker is then *not* registered).
    fn park_on_shard(
        &self,
        st: &mut TrackedMutexGuard<'_, ShardState>,
        parker: &Arc<Parker>,
        page: PageId,
    ) -> Result<()> {
        // lint: allow(raw-instant): lock-wait timeout deadline
        let now = Instant::now();
        let deadline = match parker.plock_wait() {
            Some((p, dl)) if p == page => {
                if now >= dl {
                    parker.clear_plock_wait();
                    return Err(PmpError::LockWaitTimeout);
                }
                dl
            }
            _ => {
                let dl = now + self.timeout;
                parker.set_plock_wait(page, dl);
                dl
            }
        };
        let w = Arc::clone(parker);
        st.wakers.push(Box::new(move || w.wake()));
        sched_point("plock.wait.register-backstop");
        // Safety net: peers' notify sites cover every grant/release, but a
        // crashed peer's `crash_clear` could race our registration; the
        // timer turns a lost wake into a timeout instead of a hang.
        parker.park_deadline(deadline);
        Ok(())
    }

    /// Drop one reference; if it was the last and a negotiation is pending
    /// (or lazy release is disabled), hand the lock back to Lock Fusion.
    fn unref(&self, page: PageId) {
        let shard = self.shard(page);
        let mut st = shard.state.lock();
        let Some(entry) = st.entries.get_mut(&page) else {
            return;
        };
        debug_assert!(entry.refcount > 0, "unref of unreferenced plock");
        entry.refcount -= 1;
        sched_point("plock.unref.zero-edge");
        if entry.refcount > 0 {
            return;
        }
        let must_release = entry.negotiation_pending || !self.lazy;
        if !must_release {
            // Lazy retention keeps the lock, but a local acquirer that needs
            // a *stronger* mode than the held one waits for exactly this
            // refcount-to-zero edge so it can hand the entry back and retry
            // through fusion. Without a notify here that waiter sleeps until
            // its lock-wait deadline (condvar waiter) or backstop timer
            // (parked transaction) and surfaces a spurious timeout.
            notify_shard(st, shard);
            return;
        }
        if !self.lazy {
            self.stats.eager_releases.inc();
        }
        let mode = entry.mode;
        entry.state = EntryState::Acquiring; // block local grants while we release
        drop(st);
        self.hand_back(page, mode);
        shard.cv.notify_all();
    }

    /// Push-then-release: run the engine hook (log force + DBP push for
    /// dirty pages), tell fusion, drop the local entry. Wakes the shard —
    /// a removed entry is exactly what parked acquirers wait for.
    fn hand_back(&self, page: PageId, _mode: PLockMode) {
        let hook = self.hook.lock().clone();
        if let Some(hook) = &hook {
            hook.before_release(page);
        }
        self.fusion.release(self.node, page);
        let shard = self.shard(page);
        let mut st = shard.state.lock();
        st.entries.remove(&page);
        notify_shard(st, shard);
    }

    /// Number of pages currently held/retained (diagnostics).
    pub fn held_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.state.lock().entries.len())
            .sum()
    }

    pub fn is_retained(&self, page: PageId) -> bool {
        self.shard(page).state.lock().entries.contains_key(&page)
    }

    /// Hand back every idle (refcount-zero) lock to Lock Fusion — used to
    /// quiesce a node after administrative work (bulk load) so lazily
    /// retained locks don't skew the first measured accesses of peers.
    pub fn release_idle(&self) {
        for shard in self.shards.iter() {
            // Mark every idle entry Acquiring in one pass under the lock,
            // then hand the whole set back through fusion's doorbell-batched
            // release (one charged flush for the sweep) instead of paying a
            // release RPC per page. A concurrent negotiation or crash_clear
            // racing the marked entries is safe: fusion's release tolerates
            // missing state and the entry remove below no-ops if gone.
            let victims: Vec<PageId> = {
                let mut st = shard.state.lock();
                st.entries
                    .iter_mut()
                    .filter(|(_, e)| e.state == EntryState::Held && e.refcount == 0)
                    .map(|(&page, entry)| {
                        entry.state = EntryState::Acquiring; // block local grants
                        page
                    })
                    .collect()
            };
            if victims.is_empty() {
                continue;
            }
            let hook = self.hook.lock().clone();
            if let Some(hook) = &hook {
                for &page in &victims {
                    hook.before_release(page);
                }
            }
            self.fusion.release_batch(self.node, &victims);
            let mut st = shard.state.lock();
            for page in victims {
                st.entries.remove(&page);
            }
            notify_shard(st, shard);
        }
    }

    /// Drop all local state without telling fusion — crash simulation. The
    /// fusion-side locks stay frozen until recovery calls
    /// `PLockFusion::release_all`.
    pub fn crash_clear(&self) {
        for shard in self.shards.iter() {
            let mut st = shard.state.lock();
            st.entries.clear();
            notify_shard(st, shard);
        }
    }
}

/// The fusion-facing negotiation handler. Separate struct so the engine can
/// register it while `LocalPLocks` stays behind a plain `Arc`.
pub struct NegotiationHandler {
    locks: Arc<LocalPLocks>,
}

impl NegotiationHandler {
    pub fn new(locks: Arc<LocalPLocks>) -> Arc<Self> {
        Arc::new(NegotiationHandler { locks })
    }
}

impl ReleaseRequester for NegotiationHandler {
    fn request_release(&self, page: PageId, _wanted: PLockMode) {
        let locks = &self.locks;
        let shard = locks.shard(page);
        let mut st = shard.state.lock();
        let Some(entry) = st.entries.get_mut(&page) else {
            return; // already gone
        };
        match entry.state {
            EntryState::Acquiring => {
                // We don't actually hold it yet; fusion races are benign.
                entry.negotiation_pending = true;
            }
            EntryState::Held => {
                entry.negotiation_pending = true;
                if entry.refcount == 0 {
                    locks.stats.negotiated_releases.inc();
                    let mode = entry.mode;
                    entry.state = EntryState::Acquiring;
                    drop(st);
                    locks.hand_back(page, mode);
                    shard.cv.notify_all();
                }
                // refcount > 0: the final unref will hand it back.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_common::LatencyConfig;
    use pmp_rdma::Fabric;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn setup(lazy: bool) -> (Arc<PLockFusion>, Arc<LocalPLocks>, Arc<LocalPLocks>) {
        let fusion = Arc::new(PLockFusion::new(Arc::new(
            pmp_repl::ReplicatedFabric::single(Arc::new(Fabric::new(LatencyConfig::disabled()))),
        )));
        let a = LocalPLocks::new(NodeId(1), Arc::clone(&fusion), lazy, Duration::from_secs(5));
        let b = LocalPLocks::new(NodeId(2), Arc::clone(&fusion), lazy, Duration::from_secs(5));
        fusion.register_node(NodeId(1), NegotiationHandler::new(Arc::clone(&a)));
        fusion.register_node(NodeId(2), NegotiationHandler::new(Arc::clone(&b)));
        (fusion, a, b)
    }

    #[test]
    fn lazy_retention_regrants_locally() {
        let (fusion, a, _b) = setup(true);
        let p = PageId(1);
        drop(a.acquire(p, PLockMode::X).unwrap());
        assert!(a.is_retained(p), "lazy release must retain the lock");
        assert_eq!(fusion.stats().releases.get(), 0);

        drop(a.acquire(p, PLockMode::S).unwrap());
        drop(a.acquire(p, PLockMode::X).unwrap());
        assert_eq!(a.stats().local_grants.get(), 2);
        assert_eq!(a.stats().fusion_acquires.get(), 1);
    }

    #[test]
    fn eager_mode_releases_immediately() {
        let (fusion, a, _b) = setup(false);
        let p = PageId(1);
        drop(a.acquire(p, PLockMode::X).unwrap());
        assert!(!a.is_retained(p));
        assert_eq!(fusion.stats().releases.get(), 1);
        assert_eq!(a.stats().eager_releases.get(), 1);
    }

    #[test]
    fn negotiation_transfers_idle_lock() {
        let (_fusion, a, b) = setup(true);
        let p = PageId(2);
        drop(a.acquire(p, PLockMode::X).unwrap());
        assert!(a.is_retained(p));

        // B's acquire nudges A, whose refcount is zero → instant transfer.
        let guard = b.acquire(p, PLockMode::X).unwrap();
        assert!(!a.is_retained(p));
        assert!(b.is_retained(p));
        assert_eq!(a.stats().negotiated_releases.get(), 1);
        drop(guard);
    }

    #[test]
    fn negotiation_waits_for_active_references() {
        use std::thread;
        let (_fusion, a, b) = setup(true);
        let p = PageId(3);
        let guard = a.acquire(p, PLockMode::X).unwrap();

        let b2 = Arc::clone(&b);
        let t = thread::spawn(move || b2.acquire(p, PLockMode::X).map(|g| g.mode));
        thread::sleep(Duration::from_millis(50));
        assert!(a.is_retained(p), "A must keep the lock while referenced");

        drop(guard); // refcount drains → pending negotiation fires
        assert_eq!(t.join().unwrap().unwrap(), PLockMode::X);
        assert!(!a.is_retained(p));
    }

    #[test]
    fn negotiated_page_not_regranted_locally() {
        use std::thread;
        let (_fusion, a, b) = setup(true);
        let p = PageId(4);
        let guard = a.acquire(p, PLockMode::X).unwrap();

        let b2 = Arc::clone(&b);
        let waiter = thread::spawn(move || {
            let g = b2.acquire(p, PLockMode::X).unwrap();
            thread::sleep(Duration::from_millis(50));
            drop(g);
        });
        thread::sleep(Duration::from_millis(50));

        // A tries to re-acquire while the negotiation is pending: it must
        // go through fusion and wait behind B (FIFO), not self-grant.
        let a2 = Arc::clone(&a);
        let local_attempt = thread::spawn(move || {
            let _g = a2.acquire(p, PLockMode::S).unwrap();
        });
        thread::sleep(Duration::from_millis(20));
        drop(guard);
        waiter.join().unwrap();
        local_attempt.join().unwrap();
        assert!(a.stats().local_grants.get() == 0, "no local grant allowed");
    }

    #[test]
    fn release_hook_runs_before_fusion_release() {
        struct CountingHook(AtomicUsize);
        impl ReleaseHook for CountingHook {
            fn before_release(&self, _page: PageId) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (_fusion, a, b) = setup(true);
        let hook = Arc::new(CountingHook(AtomicUsize::new(0)));
        a.set_hook(Arc::clone(&hook) as Arc<dyn ReleaseHook>);

        let p = PageId(5);
        drop(a.acquire(p, PLockMode::X).unwrap());
        drop(b.acquire(p, PLockMode::X).unwrap());
        assert_eq!(hook.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn crash_clear_leaves_fusion_frozen() {
        let (fusion, a, _b) = setup(true);
        let p = PageId(6);
        drop(a.acquire(p, PLockMode::X).unwrap());
        a.crash_clear();
        assert_eq!(a.held_count(), 0);
        assert_eq!(
            fusion.holders(p),
            vec![(NodeId(1), PLockMode::X)],
            "fusion must still see the crashed node as holder"
        );
    }

    #[test]
    fn crash_clear_during_inflight_acquire_errors_cleanly() {
        use std::thread;
        let (fusion, a, b) = setup(true);
        let p = PageId(8);
        // B holds X with a live reference, so A's fusion acquire queues.
        let guard = b.acquire(p, PLockMode::X).unwrap();
        let a2 = Arc::clone(&a);
        let t = thread::spawn(move || a2.acquire(p, PLockMode::X).map(|g| g.mode));
        thread::sleep(Duration::from_millis(50));

        // Crash A while its fusion call is in flight, then let the grant
        // land by draining B.
        a.crash_clear();
        drop(guard);

        let res = t.join().expect("in-flight acquire must not panic");
        assert!(
            matches!(res, Err(PmpError::NodeUnavailable { node: NodeId(1) })),
            "post-crash grant must surface as NodeUnavailable, got {res:?}"
        );
        assert_eq!(a.held_count(), 0);
        assert!(
            !fusion.holders(p).iter().any(|(n, _)| *n == NodeId(1)),
            "the surprise grant must be handed back to fusion"
        );
    }

    #[test]
    fn concurrent_local_acquires_share_one_fusion_call() {
        use std::thread;
        let (_fusion, a, _b) = setup(true);
        let p = PageId(7);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let a = Arc::clone(&a);
                thread::spawn(move || {
                    for _ in 0..50 {
                        drop(a.acquire(p, PLockMode::S).unwrap());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.stats().fusion_acquires.get(), 1);
        assert_eq!(a.stats().local_grants.get(), 8 * 50 - 1);
    }
}
