//! The local buffer pool (LBP), §4.2 / Figure 4.
//!
//! Each frame carries the two extra fields the paper adds to LBP page
//! metadata: a `valid` flag — registered with Buffer Fusion so a peer's
//! push can invalidate our copy with a one-sided write — and (implicitly,
//! via the DBP registration) the page's remote address. Frames also track
//! dirty state: the newest redo LSN covering the page, which must be forced
//! to storage before the page may be pushed to the DBP (§4.2's WAL rule).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, RwLock};
use pmp_common::{Counter, Llsn, Lsn, PageId};

use crate::page::Page;

/// Dirty bookkeeping for one frame.
#[derive(Clone, Copy, Debug, Default)]
pub struct DirtyState {
    pub dirty: bool,
    /// Newest redo LSN whose record touches this page (force-before-push).
    pub newest_lsn: Lsn,
    /// LLSN of the newest local modification (push version).
    pub newest_llsn: Llsn,
}

/// One buffered page.
#[derive(Debug)]
pub struct Frame {
    pub page: RwLock<Page>,
    /// Cleared remotely by Buffer Fusion when a peer pushes a newer version.
    pub valid: Arc<AtomicBool>,
    dirty: Mutex<DirtyState>,
    /// Clock-hand reference bit for eviction.
    referenced: AtomicBool,
}

impl Frame {
    fn new(page: Page, valid: Arc<AtomicBool>) -> Arc<Self> {
        Arc::new(Frame {
            page: RwLock::new(page),
            valid,
            dirty: Mutex::new(DirtyState::default()),
            referenced: AtomicBool::new(true),
        })
    }

    pub fn is_valid(&self) -> bool {
        self.valid.load(Ordering::Acquire)
    }

    pub fn set_valid(&self) {
        self.valid.store(true, Ordering::Release);
    }

    pub fn is_dirty(&self) -> bool {
        self.dirty.lock().dirty
    }

    /// Record a local modification (caller holds the frame write latch).
    pub fn mark_dirty(&self, lsn: Lsn, llsn: Llsn) {
        let mut d = self.dirty.lock();
        d.dirty = true;
        d.newest_lsn = d.newest_lsn.max(lsn);
        d.newest_llsn = d.newest_llsn.max(llsn);
    }

    pub fn dirty_state(&self) -> DirtyState {
        *self.dirty.lock()
    }

    /// Clear the dirty bit iff no modification landed after `seen` (the
    /// state captured before the flush's log force + DBP push).
    pub fn clear_dirty_if_unchanged(&self, seen: DirtyState) -> bool {
        let mut d = self.dirty.lock();
        if d.newest_lsn == seen.newest_lsn {
            d.dirty = false;
            true
        } else {
            false
        }
    }
}

enum Slot {
    /// A thread is loading this page (DBP / storage round-trip in flight).
    Loading,
    Ready(Arc<Frame>),
}

/// LBP meters.
#[derive(Debug, Default)]
pub struct LbpStats {
    pub hits: Counter,
    pub invalid_hits: Counter,
    pub misses: Counter,
    pub evictions: Counter,
}

/// The local buffer pool.
pub struct Lbp {
    map: Mutex<HashMap<PageId, Slot>>,
    load_cv: Condvar,
    capacity: usize,
    stats: LbpStats,
}

impl std::fmt::Debug for Lbp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lbp")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// Result of a frame lookup.
pub enum Lookup {
    /// Frame present (valid or not — caller checks and refreshes).
    Hit(Arc<Frame>),
    /// Absent; the caller has been appointed the loader and must call
    /// [`Lbp::finish_load`] or [`Lbp::abort_load`].
    MustLoad,
}

impl Lbp {
    pub fn new(capacity: usize) -> Self {
        Lbp {
            map: Mutex::new(HashMap::new()),
            load_cv: Condvar::new(),
            capacity,
            stats: LbpStats::default(),
        }
    }

    pub fn stats(&self) -> &LbpStats {
        &self.stats
    }

    /// Look up `page_id`; if absent, appoint the caller as the loader
    /// (exactly one loader at a time — concurrent requesters block until
    /// the load completes).
    pub fn lookup(&self, page_id: PageId) -> Lookup {
        let mut map = self.map.lock();
        loop {
            match map.get(&page_id) {
                Some(Slot::Ready(frame)) => {
                    frame.referenced.store(true, Ordering::Relaxed);
                    if frame.is_valid() {
                        self.stats.hits.inc();
                    } else {
                        self.stats.invalid_hits.inc();
                    }
                    return Lookup::Hit(Arc::clone(frame));
                }
                Some(Slot::Loading) => {
                    self.load_cv.wait(&mut map);
                }
                None => {
                    self.stats.misses.inc();
                    map.insert(page_id, Slot::Loading);
                    return Lookup::MustLoad;
                }
            }
        }
    }

    /// Install the loaded page and wake waiting requesters. `valid` is the
    /// flag the loader registered with Buffer Fusion during the load, so
    /// invalidations that raced the load are not lost.
    pub fn finish_load(&self, page_id: PageId, page: Page, valid: Arc<AtomicBool>) -> Arc<Frame> {
        let frame = Frame::new(page, valid);
        let mut map = self.map.lock();
        map.insert(page_id, Slot::Ready(Arc::clone(&frame)));
        self.load_cv.notify_all();
        frame
    }

    /// The load failed; clear the sentinel so others can retry.
    pub fn abort_load(&self, page_id: PageId) {
        let mut map = self.map.lock();
        if matches!(map.get(&page_id), Some(Slot::Loading)) {
            map.remove(&page_id);
        }
        self.load_cv.notify_all();
    }

    /// Fast peek without load appointment (flusher / diagnostics).
    pub fn peek(&self, page_id: PageId) -> Option<Arc<Frame>> {
        match self.map.lock().get(&page_id) {
            Some(Slot::Ready(f)) => Some(Arc::clone(f)),
            _ => None,
        }
    }

    /// Remove a frame outright (crash simulation / tests).
    pub fn remove(&self, page_id: PageId) {
        self.map.lock().remove(&page_id);
        self.load_cv.notify_all();
    }

    pub fn clear(&self) {
        self.map.lock().clear();
        self.load_cv.notify_all();
    }

    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn over_capacity(&self) -> bool {
        self.len() > self.capacity
    }

    /// All dirty frames (for the background flusher).
    pub fn dirty_frames(&self) -> Vec<(PageId, Arc<Frame>)> {
        self.map
            .lock()
            .iter()
            .filter_map(|(id, slot)| match slot {
                Slot::Ready(f) if f.is_dirty() => Some((*id, Arc::clone(f))),
                _ => None,
            })
            .collect()
    }

    /// Evict up to `want` clean, unlatched, unreferenced frames (clock
    /// second-chance). Returns the evicted page ids so the caller can
    /// unregister them from Buffer Fusion.
    pub fn evict(&self, want: usize) -> Vec<PageId> {
        let mut evicted = Vec::new();
        let mut map = self.map.lock();
        let candidates: Vec<PageId> = map.keys().copied().collect();
        for id in candidates {
            if evicted.len() >= want {
                break;
            }
            let Some(Slot::Ready(frame)) = map.get(&id) else {
                continue;
            };
            if frame.referenced.swap(false, Ordering::Relaxed) {
                continue; // second chance
            }
            if frame.is_dirty() {
                continue; // flusher's job first
            }
            if frame.page.try_write().is_none() {
                continue; // in active use
            }
            map.remove(&id);
            self.stats.evictions.inc();
            evicted.push(id);
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_common::PageId;

    fn page(id: u64) -> Page {
        Page::new_leaf(PageId(id))
    }

    #[test]
    fn miss_appoints_single_loader() {
        let lbp = Lbp::new(10);
        assert!(matches!(lbp.lookup(PageId(1)), Lookup::MustLoad));
        let frame = lbp.finish_load(PageId(1), page(1), Arc::new(AtomicBool::new(true)));
        assert!(frame.is_valid());
        match lbp.lookup(PageId(1)) {
            Lookup::Hit(f) => assert!(Arc::ptr_eq(&f, &frame)),
            Lookup::MustLoad => panic!("second lookup must hit"),
        }
        assert_eq!(lbp.stats().misses.get(), 1);
        assert_eq!(lbp.stats().hits.get(), 1);
    }

    #[test]
    fn concurrent_requesters_wait_for_loader() {
        use std::thread;
        use std::time::Duration;
        let lbp = Arc::new(Lbp::new(10));
        assert!(matches!(lbp.lookup(PageId(1)), Lookup::MustLoad));

        let lbp2 = Arc::clone(&lbp);
        let waiter = thread::spawn(move || match lbp2.lookup(PageId(1)) {
            Lookup::Hit(f) => f.page.read().id,
            Lookup::MustLoad => panic!("waiter must not become a second loader"),
        });
        thread::sleep(Duration::from_millis(30));
        lbp.finish_load(PageId(1), page(1), Arc::new(AtomicBool::new(true)));
        assert_eq!(waiter.join().unwrap(), PageId(1));
    }

    #[test]
    fn abort_load_lets_next_requester_retry() {
        let lbp = Lbp::new(10);
        assert!(matches!(lbp.lookup(PageId(1)), Lookup::MustLoad));
        lbp.abort_load(PageId(1));
        assert!(matches!(lbp.lookup(PageId(1)), Lookup::MustLoad));
    }

    #[test]
    fn dirty_tracking_and_conditional_clear() {
        let lbp = Lbp::new(10);
        lbp.lookup(PageId(1));
        let frame = lbp.finish_load(PageId(1), page(1), Arc::new(AtomicBool::new(true)));
        assert!(!frame.is_dirty());
        frame.mark_dirty(Lsn(100), Llsn(5));
        let seen = frame.dirty_state();
        assert!(seen.dirty);
        assert_eq!(seen.newest_lsn, Lsn(100));

        // A new write lands between capture and clear → clear must fail.
        frame.mark_dirty(Lsn(200), Llsn(6));
        assert!(!frame.clear_dirty_if_unchanged(seen));
        assert!(frame.is_dirty());

        let seen2 = frame.dirty_state();
        assert!(frame.clear_dirty_if_unchanged(seen2));
        assert!(!frame.is_dirty());
    }

    #[test]
    fn eviction_skips_dirty_referenced_and_latched() {
        let lbp = Lbp::new(2);
        for id in 1..=4u64 {
            lbp.lookup(PageId(id));
            lbp.finish_load(PageId(id), page(id), Arc::new(AtomicBool::new(true)));
        }
        // Frame 1: dirty. Frame 2: latched. Frames 3, 4: evictable.
        lbp.peek(PageId(1)).unwrap().mark_dirty(Lsn(1), Llsn(1));
        let f2 = lbp.peek(PageId(2)).unwrap();
        let _latch = f2.page.read();

        // First pass only clears reference bits (second chance).
        assert!(lbp.evict(10).is_empty());
        let evicted = lbp.evict(10);
        assert!(evicted.contains(&PageId(3)));
        assert!(evicted.contains(&PageId(4)));
        assert!(!evicted.contains(&PageId(1)));
        assert!(!evicted.contains(&PageId(2)));
        assert_eq!(lbp.len(), 2);
    }

    #[test]
    fn dirty_frames_enumeration() {
        let lbp = Lbp::new(10);
        for id in 1..=3u64 {
            lbp.lookup(PageId(id));
            lbp.finish_load(PageId(id), page(id), Arc::new(AtomicBool::new(true)));
        }
        lbp.peek(PageId(2)).unwrap().mark_dirty(Lsn(1), Llsn(1));
        let dirty = lbp.dirty_frames();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].0, PageId(2));
    }

    #[test]
    fn invalid_hit_is_counted_separately() {
        let lbp = Lbp::new(10);
        lbp.lookup(PageId(1));
        let frame = lbp.finish_load(PageId(1), page(1), Arc::new(AtomicBool::new(true)));
        frame.valid.store(false, Ordering::Release);
        assert!(matches!(lbp.lookup(PageId(1)), Lookup::Hit(_)));
        assert_eq!(lbp.stats().invalid_hits.get(), 1);
    }
}
