//! The local buffer pool (LBP), §4.2 / Figure 4.
//!
//! Each frame carries the two extra fields the paper adds to LBP page
//! metadata: a `valid` flag — registered with Buffer Fusion so a peer's
//! push can invalidate our copy with a one-sided write — and (implicitly,
//! via the DBP registration) the page's remote address. Frames also track
//! dirty state: the newest redo LSN covering the page, which must be forced
//! to storage before the page may be pushed to the DBP (§4.2's WAL rule).
//!
//! The pool is *sharded* the way a production buffer pool is partitioned
//! (PolarDB-MP §4.2 assumes production buffer-pool behaviour): page ids
//! hash onto a power-of-two number of shards, each with its own map,
//! condvar and clock hand. A loader waiting on a storage round-trip only
//! ever blocks requesters of pages in the same shard, `dirty_frames` never
//! stops the world, and eviction scans one shard at a time.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

// The frame latch stays a raw parking_lot lock on purpose: B-tree descent
// latch-crabs parent→child latches of the *same* class, which the tracked
// wrapper correctly rejects as same-class nesting. Everything else in this
// file is tracked.
use parking_lot::RwLock; // lint: allow(raw-parking-lot): Frame.page latch-crabs same-class B-tree latches
use pmp_common::sync::{LockClass, TrackedCondvar, TrackedMutex};
use pmp_common::{Counter, Llsn, Lsn, PageId};

/// Shard maps (lookup/install/evict). Ordered before `engine.lbp.frame_dirty`
/// (eviction and the flusher inspect dirty state under the shard lock).
const LBP_SHARD: LockClass = LockClass::new("engine.lbp.shard");
/// Per-frame dirty bookkeeping.
const LBP_FRAME_DIRTY: LockClass = LockClass::new("engine.lbp.frame_dirty");

use crate::page::Page;

/// Number of shards. Power of two so the hash can mask; 16 keeps per-shard
/// maps small while comfortably exceeding the worker-thread counts the
/// benches drive (contention drops ~linearly with shard count).
const SHARD_COUNT: usize = 16;

/// Fibonacci multiplier spreads the (often sequential) page ids across
/// shards.
const HASH_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn shard_index(page_id: PageId) -> usize {
    (page_id.0.wrapping_mul(HASH_MULT) >> 32) as usize & (SHARD_COUNT - 1)
}

/// Dirty bookkeeping for one frame.
#[derive(Clone, Copy, Debug, Default)]
pub struct DirtyState {
    pub dirty: bool,
    /// Newest redo LSN whose record touches this page (force-before-push).
    pub newest_lsn: Lsn,
    /// LLSN of the newest local modification (push version).
    pub newest_llsn: Llsn,
}

/// One buffered page.
#[derive(Debug)]
pub struct Frame {
    pub page: RwLock<Page>,
    /// Cleared remotely by Buffer Fusion when a peer pushes a newer version.
    pub valid: Arc<AtomicBool>,
    dirty: TrackedMutex<DirtyState>,
    /// Clock-hand reference bit for eviction.
    referenced: AtomicBool,
}

impl Frame {
    fn new(page: Page, valid: Arc<AtomicBool>) -> Arc<Self> {
        Arc::new(Frame {
            page: RwLock::new(page),
            valid,
            dirty: TrackedMutex::new(LBP_FRAME_DIRTY, DirtyState::default()),
            referenced: AtomicBool::new(true),
        })
    }

    pub fn is_valid(&self) -> bool {
        self.valid.load(Ordering::Acquire)
    }

    pub fn set_valid(&self) {
        self.valid.store(true, Ordering::Release);
    }

    pub fn is_dirty(&self) -> bool {
        self.dirty.lock().dirty
    }

    /// Record a local modification (caller holds the frame write latch).
    pub fn mark_dirty(&self, lsn: Lsn, llsn: Llsn) {
        let mut d = self.dirty.lock();
        d.dirty = true;
        d.newest_lsn = d.newest_lsn.max(lsn);
        d.newest_llsn = d.newest_llsn.max(llsn);
    }

    pub fn dirty_state(&self) -> DirtyState {
        *self.dirty.lock()
    }

    /// Clear the dirty bit iff no modification landed after `seen` (the
    /// state captured before the flush's log force + DBP push).
    pub fn clear_dirty_if_unchanged(&self, seen: DirtyState) -> bool {
        let mut d = self.dirty.lock();
        if d.newest_lsn == seen.newest_lsn {
            d.dirty = false;
            true
        } else {
            false
        }
    }
}

enum Slot {
    /// A thread is loading this page (DBP / storage round-trip in flight).
    /// Carries the loader's ticket (so only that loader can complete the
    /// slot) and the pool's wipe generation at appointment time (a load
    /// that straddles a [`Lbp::clear`] must not install its page — see
    /// [`Lbp::finish_load`]).
    Loading {
        ticket: u64,
        gen: u64,
    },
    Ready(Arc<Frame>),
}

/// Proof of loader appointment, returned inside [`Lookup::MustLoad`] and
/// required by [`Lbp::finish_load`] / [`Lbp::abort_load`]. Tickets are
/// unique for the lifetime of the pool, so a load can only ever complete
/// its *own* sentinel — never a newer loader's appointment for the same
/// page (e.g. after a crash wipe re-appointed someone else).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadTicket(u64);

/// One shard: its own map and condvar, so a load in flight only blocks
/// requesters hashing to the same shard.
struct Shard {
    map: TrackedMutex<HashMap<PageId, Slot>>,
    load_cv: TrackedCondvar,
}

impl Shard {
    fn new() -> Self {
        Shard {
            map: TrackedMutex::new(LBP_SHARD, HashMap::new()),
            load_cv: TrackedCondvar::new(),
        }
    }
}

/// LBP meters.
#[derive(Debug, Default)]
pub struct LbpStats {
    pub hits: Counter,
    pub invalid_hits: Counter,
    pub misses: Counter,
    pub evictions: Counter,
}

/// The local buffer pool.
pub struct Lbp {
    shards: Box<[Shard]>,
    /// Total entries across all shards (Loading sentinels included), kept
    /// as an atomic so capacity checks never touch a shard lock.
    len: AtomicUsize,
    /// Round-robin shard cursor for eviction fairness (the clock hand's
    /// coarse position; within a shard the reference bits are the hand).
    evict_cursor: AtomicUsize,
    /// Pool-wide wipe generation: even = stable, odd = a [`Lbp::clear`] is
    /// in progress. `finish_load` installs a frame only when the generation
    /// is even *and* unchanged since the loader was appointed, so a wipe is
    /// atomic against concurrent loads: the pool holds no frames at the
    /// moment `clear` returns.
    wipe_gen: AtomicU64,
    /// Source of unique loader tickets.
    next_ticket: AtomicU64,
    capacity: usize,
    stats: LbpStats,
}

impl std::fmt::Debug for Lbp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lbp")
            .field("capacity", &self.capacity)
            .field("shards", &SHARD_COUNT)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// Result of a frame lookup.
pub enum Lookup {
    /// Frame present (valid or not — caller checks and refreshes).
    Hit(Arc<Frame>),
    /// Absent; the caller has been appointed the loader and must call
    /// [`Lbp::finish_load`] or [`Lbp::abort_load`] with the ticket.
    MustLoad(LoadTicket),
}

impl Lbp {
    pub fn new(capacity: usize) -> Self {
        Lbp {
            shards: (0..SHARD_COUNT).map(|_| Shard::new()).collect(),
            len: AtomicUsize::new(0),
            evict_cursor: AtomicUsize::new(0),
            wipe_gen: AtomicU64::new(0),
            next_ticket: AtomicU64::new(0),
            capacity,
            stats: LbpStats::default(),
        }
    }

    pub fn stats(&self) -> &LbpStats {
        &self.stats
    }

    /// Number of shards (exposed for tests and diagnostics).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard(&self, page_id: PageId) -> &Shard {
        &self.shards[shard_index(page_id)]
    }

    /// Look up `page_id`; if absent, appoint the caller as the loader
    /// (exactly one loader at a time — concurrent requesters block until
    /// the load completes).
    pub fn lookup(&self, page_id: PageId) -> Lookup {
        let shard = self.shard(page_id);
        let mut map = shard.map.lock();
        loop {
            match map.get(&page_id) {
                Some(Slot::Ready(frame)) => {
                    frame.referenced.store(true, Ordering::Relaxed); // lint: allow(relaxed-atomic): advisory clock-hand reference bit; a stale read only skews eviction choice
                    if frame.is_valid() {
                        self.stats.hits.inc();
                    } else {
                        self.stats.invalid_hits.inc();
                    }
                    return Lookup::Hit(Arc::clone(frame));
                }
                Some(Slot::Loading { .. }) => {
                    shard.load_cv.wait(&mut map);
                }
                None => {
                    self.stats.misses.inc();
                    let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed-atomic): monotonic ticket allocator
                    let gen = self.wipe_gen.load(Ordering::SeqCst);
                    map.insert(page_id, Slot::Loading { ticket, gen });
                    self.len.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed-atomic): approximate occupancy counter; readers tolerate slack
                    return Lookup::MustLoad(LoadTicket(ticket));
                }
            }
        }
    }

    /// Non-blocking loader appointment for speculative prefetch: if the
    /// page is absent, appoint the caller (who must resolve the sentinel
    /// via [`finish_load`](Self::finish_load) /
    /// [`abort_load`](Self::abort_load), typically from an io-ring
    /// completion); if the page is present *or a load is already in
    /// flight*, return `None` without blocking — a prefetcher never waits
    /// behind demand loads.
    pub fn try_appoint(&self, page_id: PageId) -> Option<LoadTicket> {
        let shard = self.shard(page_id);
        let mut map = shard.map.lock();
        match map.get(&page_id) {
            Some(Slot::Ready(frame)) => {
                frame.referenced.store(true, Ordering::Relaxed); // lint: allow(relaxed-atomic): advisory clock-hand reference bit; a stale read only skews eviction choice
                None
            }
            Some(Slot::Loading { .. }) => None,
            None => {
                self.stats.misses.inc();
                let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed-atomic): monotonic ticket allocator
                let gen = self.wipe_gen.load(Ordering::SeqCst);
                map.insert(page_id, Slot::Loading { ticket, gen });
                self.len.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed-atomic): approximate occupancy counter; readers tolerate slack
                Some(LoadTicket(ticket))
            }
        }
    }

    /// Shard a page id maps to (exposed so tests can build same-shard
    /// conflict sets).
    pub fn shard_of(&self, page_id: PageId) -> usize {
        shard_index(page_id)
    }

    /// Install the loaded page and wake waiting requesters. `valid` is the
    /// flag the loader registered with Buffer Fusion during the load, so
    /// invalidations that raced the load are not lost.
    ///
    /// The frame is installed only over the caller's own `Loading` sentinel
    /// (matched by ticket), and only if no pool wipe started since the
    /// caller was appointed. If the pool was (or is being) wiped while the
    /// load was in flight (`clear`/`remove`, the crash-simulation path),
    /// the page is *not* resurrected into the pool: the caller still gets
    /// its frame for its own use, but the map stays as the wipe left it —
    /// even when a post-wipe loader has already been re-appointed for the
    /// same page.
    pub fn finish_load(
        &self,
        page_id: PageId,
        ticket: LoadTicket,
        page: Page,
        valid: Arc<AtomicBool>,
    ) -> Arc<Frame> {
        let shard = self.shard(page_id);
        let mut map = shard.map.lock();
        let gen = self.wipe_gen.load(Ordering::SeqCst);
        match map.get(&page_id) {
            Some(Slot::Loading { ticket: t, gen: g }) if *t == ticket.0 => {
                if *g == gen && gen.is_multiple_of(2) {
                    let frame = Frame::new(page, valid);
                    map.insert(page_id, Slot::Ready(Arc::clone(&frame)));
                    shard.load_cv.notify_all();
                    frame
                } else {
                    // Our sentinel, but a wipe ran (or is running) since the
                    // appointment: drop the sentinel rather than install into
                    // a pool that must come out empty.
                    map.remove(&page_id);
                    self.len.fetch_sub(1, Ordering::Relaxed); // lint: allow(relaxed-atomic): approximate occupancy counter; readers tolerate slack
                    shard.load_cv.notify_all();
                    Frame::new(page, valid)
                }
            }
            Some(Slot::Loading { .. }) => {
                // A wipe removed our sentinel and a fresh loader has been
                // appointed since; its load is authoritative, ours is not.
                Frame::new(page, valid)
            }
            Some(Slot::Ready(existing)) => {
                // Our sentinel was wiped and another loader already installed
                // a (necessarily at-least-as-fresh) frame; keep the pool's.
                Arc::clone(existing)
            }
            None => {
                // Pool wiped mid-load: hand the page back without installing.
                shard.load_cv.notify_all();
                Frame::new(page, valid)
            }
        }
    }

    /// The load failed; clear the sentinel so others can retry. Only the
    /// appointed loader's ticket clears it — a stale loader cannot kill a
    /// re-appointed successor's sentinel.
    pub fn abort_load(&self, page_id: PageId, ticket: LoadTicket) {
        let shard = self.shard(page_id);
        let mut map = shard.map.lock();
        if matches!(map.get(&page_id), Some(Slot::Loading { ticket: t, .. }) if *t == ticket.0) {
            map.remove(&page_id);
            self.len.fetch_sub(1, Ordering::Relaxed); // lint: allow(relaxed-atomic): approximate occupancy counter; readers tolerate slack
        }
        shard.load_cv.notify_all();
    }

    /// Fast peek without load appointment (flusher / diagnostics).
    pub fn peek(&self, page_id: PageId) -> Option<Arc<Frame>> {
        match self.shard(page_id).map.lock().get(&page_id) {
            Some(Slot::Ready(f)) => Some(Arc::clone(f)),
            _ => None,
        }
    }

    /// Remove a frame outright (crash simulation / tests).
    pub fn remove(&self, page_id: PageId) {
        let shard = self.shard(page_id);
        let mut map = shard.map.lock();
        if map.remove(&page_id).is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed); // lint: allow(relaxed-atomic): approximate occupancy counter; readers tolerate slack
        }
        shard.load_cv.notify_all();
    }

    /// Pool-wide wipe (crash simulation). Atomic against concurrent loads
    /// even though shards are cleared one at a time: the odd wipe
    /// generation makes `finish_load` refuse installs for the whole
    /// duration, and loads appointed before the wipe fail the generation
    /// check afterwards — so no frame installed concurrently with `clear`
    /// can be present when it returns.
    pub fn clear(&self) {
        self.wipe_begin();
        for shard in self.shards.iter() {
            let mut map = shard.map.lock();
            let removed = map.len();
            map.clear();
            self.len.fetch_sub(removed, Ordering::Relaxed); // lint: allow(relaxed-atomic): approximate occupancy counter; readers tolerate slack
            shard.load_cv.notify_all();
        }
        self.wipe_end();
    }

    /// Enter the wipe-in-progress state (generation becomes odd).
    fn wipe_begin(&self) {
        let prev = self.wipe_gen.fetch_add(1, Ordering::SeqCst);
        debug_assert!(prev.is_multiple_of(2), "concurrent Lbp::clear calls");
    }

    /// Leave the wipe-in-progress state (generation becomes even again).
    fn wipe_end(&self) {
        self.wipe_gen.fetch_add(1, Ordering::SeqCst);
    }

    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed) // lint: allow(relaxed-atomic): approximate occupancy counter; readers tolerate slack
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn over_capacity(&self) -> bool {
        self.len() > self.capacity
    }

    /// All dirty frames (for the background flusher). Walks shard by shard —
    /// never holds more than one shard lock, so flush ticks, checkpoints and
    /// the crash path no longer stop concurrent lookups pool-wide.
    pub fn dirty_frames(&self) -> Vec<(PageId, Arc<Frame>)> {
        let mut dirty = Vec::new();
        for shard in self.shards.iter() {
            let map = shard.map.lock();
            for (id, slot) in map.iter() {
                if let Slot::Ready(f) = slot {
                    if f.is_dirty() {
                        dirty.push((*id, Arc::clone(f)));
                    }
                }
            }
        }
        dirty
    }

    /// Evict up to `want` clean, unlatched, unreferenced frames (clock
    /// second-chance). Scans shards round-robin from a rotating cursor,
    /// holding only one shard lock at a time and cloning only that shard's
    /// keys. Returns the evicted page ids so the caller can unregister them
    /// from Buffer Fusion.
    pub fn evict(&self, want: usize) -> Vec<PageId> {
        let mut evicted = Vec::new();
        let start = self.evict_cursor.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed-atomic): advisory clock-hand cursor; any start position is valid
        for i in 0..SHARD_COUNT {
            if evicted.len() >= want {
                break;
            }
            let shard = &self.shards[(start + i) & (SHARD_COUNT - 1)];
            let mut map = shard.map.lock();
            let candidates: Vec<PageId> = map.keys().copied().collect();
            for id in candidates {
                if evicted.len() >= want {
                    break;
                }
                let Some(Slot::Ready(frame)) = map.get(&id) else {
                    continue;
                };
                // lint: allow(relaxed-atomic): advisory clock-hand reference bit; a stale read only skews eviction choice
                if frame.referenced.swap(false, Ordering::Relaxed) {
                    continue; // second chance
                }
                if frame.is_dirty() {
                    continue; // flusher's job first
                }
                if frame.page.try_write().is_none() {
                    continue; // in active use
                }
                map.remove(&id);
                self.len.fetch_sub(1, Ordering::Relaxed); // lint: allow(relaxed-atomic): approximate occupancy counter; readers tolerate slack
                self.stats.evictions.inc();
                evicted.push(id);
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_common::PageId;

    fn page(id: u64) -> Page {
        Page::new_leaf(PageId(id))
    }

    /// Expect a miss and return the loader ticket.
    fn must_load(lbp: &Lbp, id: u64) -> LoadTicket {
        match lbp.lookup(PageId(id)) {
            Lookup::MustLoad(t) => t,
            Lookup::Hit(_) => panic!("expected a miss for page {id}"),
        }
    }

    /// Lookup-and-load helper: loads the page on a miss.
    fn load(lbp: &Lbp, id: u64) -> Arc<Frame> {
        match lbp.lookup(PageId(id)) {
            Lookup::MustLoad(t) => {
                lbp.finish_load(PageId(id), t, page(id), Arc::new(AtomicBool::new(true)))
            }
            Lookup::Hit(f) => f,
        }
    }

    #[test]
    fn miss_appoints_single_loader() {
        let lbp = Lbp::new(10);
        let t = must_load(&lbp, 1);
        let frame = lbp.finish_load(PageId(1), t, page(1), Arc::new(AtomicBool::new(true)));
        assert!(frame.is_valid());
        match lbp.lookup(PageId(1)) {
            Lookup::Hit(f) => assert!(Arc::ptr_eq(&f, &frame)),
            Lookup::MustLoad(_) => panic!("second lookup must hit"),
        }
        assert_eq!(lbp.stats().misses.get(), 1);
        assert_eq!(lbp.stats().hits.get(), 1);
    }

    #[test]
    fn concurrent_requesters_wait_for_loader() {
        use std::thread;
        use std::time::Duration;
        let lbp = Arc::new(Lbp::new(10));
        let t = must_load(&lbp, 1);

        let lbp2 = Arc::clone(&lbp);
        let waiter = thread::spawn(move || match lbp2.lookup(PageId(1)) {
            Lookup::Hit(f) => f.page.read().id,
            Lookup::MustLoad(_) => panic!("waiter must not become a second loader"),
        });
        thread::sleep(Duration::from_millis(30));
        lbp.finish_load(PageId(1), t, page(1), Arc::new(AtomicBool::new(true)));
        assert_eq!(waiter.join().unwrap(), PageId(1));
    }

    #[test]
    fn abort_load_lets_next_requester_retry() {
        let lbp = Lbp::new(10);
        let t = must_load(&lbp, 1);
        lbp.abort_load(PageId(1), t);
        assert!(matches!(lbp.lookup(PageId(1)), Lookup::MustLoad(_)));
    }

    #[test]
    fn try_appoint_only_wins_absent_pages() {
        let lbp = Lbp::new(10);
        // Absent → appointed.
        let t = lbp.try_appoint(PageId(1)).expect("absent page appoints");
        // Load already in flight → no second appointment, and no blocking.
        assert!(lbp.try_appoint(PageId(1)).is_none());
        lbp.finish_load(PageId(1), t, page(1), Arc::new(AtomicBool::new(true)));
        // Resident → nothing to do.
        assert!(lbp.try_appoint(PageId(1)).is_none());
        assert_eq!(lbp.len(), 1);
    }

    #[test]
    fn try_appoint_sentinel_resolves_like_a_demand_load() {
        use std::thread;
        use std::time::Duration;
        let lbp = Arc::new(Lbp::new(10));
        let t = lbp.try_appoint(PageId(3)).unwrap();

        // A demand requester waits on the prefetch sentinel, not loads twice.
        let lbp2 = Arc::clone(&lbp);
        let waiter = thread::spawn(move || match lbp2.lookup(PageId(3)) {
            Lookup::Hit(f) => f.page.read().id,
            Lookup::MustLoad(_) => panic!("demand requester must wait for the prefetch"),
        });
        thread::sleep(Duration::from_millis(30));
        lbp.finish_load(PageId(3), t, page(3), Arc::new(AtomicBool::new(true)));
        assert_eq!(waiter.join().unwrap(), PageId(3));
    }

    #[test]
    fn aborted_try_appoint_leaves_no_sentinel() {
        let lbp = Lbp::new(10);
        let t = lbp.try_appoint(PageId(4)).unwrap();
        lbp.abort_load(PageId(4), t);
        assert_eq!(lbp.len(), 0);
        assert!(matches!(lbp.lookup(PageId(4)), Lookup::MustLoad(_)));
    }

    #[test]
    fn dirty_tracking_and_conditional_clear() {
        let lbp = Lbp::new(10);
        let frame = load(&lbp, 1);
        assert!(!frame.is_dirty());
        frame.mark_dirty(Lsn(100), Llsn(5));
        let seen = frame.dirty_state();
        assert!(seen.dirty);
        assert_eq!(seen.newest_lsn, Lsn(100));

        // A new write lands between capture and clear → clear must fail.
        frame.mark_dirty(Lsn(200), Llsn(6));
        assert!(!frame.clear_dirty_if_unchanged(seen));
        assert!(frame.is_dirty());

        let seen2 = frame.dirty_state();
        assert!(frame.clear_dirty_if_unchanged(seen2));
        assert!(!frame.is_dirty());
    }

    #[test]
    fn eviction_skips_dirty_referenced_and_latched() {
        let lbp = Lbp::new(2);
        for id in 1..=4u64 {
            load(&lbp, id);
        }
        // Frame 1: dirty. Frame 2: latched. Frames 3, 4: evictable.
        lbp.peek(PageId(1)).unwrap().mark_dirty(Lsn(1), Llsn(1));
        let f2 = lbp.peek(PageId(2)).unwrap();
        let _latch = f2.page.read();

        // First pass only clears reference bits (second chance).
        assert!(lbp.evict(10).is_empty());
        let evicted = lbp.evict(10);
        assert!(evicted.contains(&PageId(3)));
        assert!(evicted.contains(&PageId(4)));
        assert!(!evicted.contains(&PageId(1)));
        assert!(!evicted.contains(&PageId(2)));
        assert_eq!(lbp.len(), 2);
    }

    #[test]
    fn dirty_frames_enumeration() {
        let lbp = Lbp::new(10);
        for id in 1..=3u64 {
            load(&lbp, id);
        }
        lbp.peek(PageId(2)).unwrap().mark_dirty(Lsn(1), Llsn(1));
        let dirty = lbp.dirty_frames();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].0, PageId(2));
    }

    #[test]
    fn invalid_hit_is_counted_separately() {
        let lbp = Lbp::new(10);
        let frame = load(&lbp, 1);
        frame.valid.store(false, Ordering::Release);
        assert!(matches!(lbp.lookup(PageId(1)), Lookup::Hit(_)));
        assert_eq!(lbp.stats().invalid_hits.get(), 1);
    }

    #[test]
    fn finish_load_does_not_resurrect_into_wiped_pool() {
        // Crash simulation wipes the pool while a load is in flight; the
        // loader's finish_load must not reinstall the page.
        let lbp = Lbp::new(10);
        let t = must_load(&lbp, 1);
        lbp.clear();
        let frame = lbp.finish_load(PageId(1), t, page(1), Arc::new(AtomicBool::new(true)));
        assert_eq!(frame.page.read().id, PageId(1), "loader keeps its frame");
        assert!(lbp.is_empty(), "wiped pool must stay empty");
        assert!(lbp.peek(PageId(1)).is_none());
        // The next requester becomes a fresh loader.
        assert!(matches!(lbp.lookup(PageId(1)), Lookup::MustLoad(_)));
    }

    #[test]
    fn finish_load_after_remove_does_not_resurrect() {
        let lbp = Lbp::new(10);
        let t = must_load(&lbp, 7);
        lbp.remove(PageId(7));
        lbp.finish_load(PageId(7), t, page(7), Arc::new(AtomicBool::new(true)));
        assert!(lbp.peek(PageId(7)).is_none());
        assert_eq!(lbp.len(), 0);
    }

    #[test]
    fn load_appointed_during_wipe_is_not_installed() {
        // A loader appointed while clear() is mid-wipe (its shard already
        // cleared) must not install: the pool has to come out of the wipe
        // empty even though the sentinel itself survives the shard pass.
        let lbp = Lbp::new(10);
        lbp.wipe_begin();
        let t = must_load(&lbp, 1);
        // Finishing *during* the wipe is refused...
        let frame = lbp.finish_load(PageId(1), t, page(1), Arc::new(AtomicBool::new(true)));
        assert_eq!(frame.page.read().id, PageId(1), "loader keeps its frame");
        assert!(lbp.peek(PageId(1)).is_none());
        assert!(lbp.is_empty());
        lbp.wipe_end();

        // ...and so is finishing *after* the wipe, for a mid-wipe sentinel.
        lbp.wipe_begin();
        let t = must_load(&lbp, 2);
        lbp.wipe_end();
        lbp.finish_load(PageId(2), t, page(2), Arc::new(AtomicBool::new(true)));
        assert!(lbp.peek(PageId(2)).is_none());
        assert!(lbp.is_empty());

        // A load appointed in the stable state installs normally again.
        load(&lbp, 3);
        assert!(lbp.peek(PageId(3)).is_some());
        assert_eq!(lbp.len(), 1);
    }

    #[test]
    fn stale_loader_cannot_usurp_reappointed_successor() {
        // Loader A appointed, pool wiped, loader B re-appointed for the
        // same page: A's finish_load must neither install its (pre-wipe)
        // page nor destroy B's sentinel; A's abort_load must not either.
        let lbp = Lbp::new(10);
        let ta = must_load(&lbp, 1);
        lbp.clear();
        let tb = must_load(&lbp, 1);

        lbp.finish_load(PageId(1), ta, page(1), Arc::new(AtomicBool::new(true)));
        assert!(lbp.peek(PageId(1)).is_none(), "A must not install over B");
        lbp.abort_load(PageId(1), ta);
        assert_eq!(lbp.len(), 1, "A must not clear B's sentinel");

        // B completes normally.
        let fb = lbp.finish_load(PageId(1), tb, page(1), Arc::new(AtomicBool::new(true)));
        match lbp.lookup(PageId(1)) {
            Lookup::Hit(f) => assert!(Arc::ptr_eq(&f, &fb)),
            Lookup::MustLoad(_) => panic!("B's install must be visible"),
        }
    }

    #[test]
    fn concurrent_clears_and_loads_keep_len_consistent() {
        use std::thread;
        // clear() racing lookup/finish_load/abort_load churn: terminates
        // (no lost wakeups), and the atomic len matches the shard contents
        // afterwards despite stale-sentinel removals.
        const PAGES: u64 = 32;
        let lbp = Arc::new(Lbp::new(64));
        let mut handles = Vec::new();
        for t in 0..4usize {
            let lbp = Arc::clone(&lbp);
            handles.push(thread::spawn(move || {
                let mut state = 0xC0FF_EE00u64 ^ (t as u64 + 1);
                let mut rng = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for i in 0..2_000u64 {
                    let id = rng() % PAGES + 1;
                    match lbp.lookup(PageId(id)) {
                        Lookup::Hit(_) => {}
                        Lookup::MustLoad(ticket) => {
                            if rng() % 8 == 0 {
                                lbp.abort_load(PageId(id), ticket);
                            } else {
                                lbp.finish_load(
                                    PageId(id),
                                    ticket,
                                    page(id),
                                    Arc::new(AtomicBool::new(true)),
                                );
                            }
                        }
                    }
                    if t == 0 && i % 256 == 0 {
                        lbp.clear();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut actual = 0;
        for id in 1..=PAGES {
            if lbp.peek(PageId(id)).is_some() {
                actual += 1;
            }
        }
        assert_eq!(lbp.len(), actual, "atomic len must match shard contents");
        lbp.clear();
        assert!(lbp.is_empty());
    }

    #[test]
    fn len_tracks_inserts_and_removals_across_shards() {
        let lbp = Lbp::new(100);
        for id in 1..=64u64 {
            load(&lbp, id);
        }
        assert_eq!(lbp.len(), 64);
        lbp.remove(PageId(1));
        assert_eq!(lbp.len(), 63);
        lbp.evict(1000); // clears reference bits
        let evicted = lbp.evict(1000);
        assert_eq!(lbp.len(), 63 - evicted.len());
        lbp.clear();
        assert_eq!(lbp.len(), 0);
        assert!(lbp.is_empty());
    }

    #[test]
    fn loads_in_one_shard_do_not_block_other_pages() {
        use std::thread;
        // Appoint a loader for page 1 and never finish it; lookups of other
        // pages must still complete (pool-wide condvar would *also* pass
        // this, but a pool-wide *lock held across the load* would not — the
        // test pins the behaviour the sharding is for).
        let lbp = Arc::new(Lbp::new(100));
        let t = must_load(&lbp, 1);

        let lbp2 = Arc::clone(&lbp);
        let other = thread::spawn(move || {
            for id in 2..40u64 {
                load(&lbp2, id);
            }
        });
        other.join().unwrap();
        lbp.abort_load(PageId(1), t);
        assert_eq!(lbp.len(), 38);
    }

    /// Multithreaded stress: concurrent lookup/finish_load/abort_load/evict
    /// and remote-style invalidations over a small page set. Asserts the
    /// single-loader-per-page invariant, that every condvar waiter is woken
    /// (the test terminates), and stats consistency
    /// (hits + invalid_hits + misses == lookups).
    #[test]
    fn stress_single_loader_and_stats_consistency() {
        use std::sync::atomic::AtomicU64;
        use std::thread;

        const PAGES: u64 = 24;
        const THREADS: usize = 8;
        const OPS: u64 = 3_000;

        let lbp = Arc::new(Lbp::new(16)); // smaller than the page set → evictions
        let loading: Arc<Vec<AtomicBool>> =
            Arc::new((0..PAGES).map(|_| AtomicBool::new(false)).collect());
        let lookups = Arc::new(AtomicU64::new(0));

        let mut handles = Vec::new();
        for t in 0..THREADS {
            let lbp = Arc::clone(&lbp);
            let loading = Arc::clone(&loading);
            let lookups = Arc::clone(&lookups);
            handles.push(thread::spawn(move || {
                // Cheap deterministic per-thread PRNG (xorshift).
                let mut state = 0x9E3779B9u64 ^ (t as u64 + 1);
                let mut rng = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for _ in 0..OPS {
                    let id = rng() % PAGES;
                    let page_id = PageId(id + 1);
                    match rng() % 10 {
                        // Mostly lookups (with load on miss).
                        0..=6 => {
                            lookups.fetch_add(1, Ordering::Relaxed);
                            match lbp.lookup(page_id) {
                                Lookup::Hit(f) => {
                                    let _ = f.is_valid();
                                }
                                Lookup::MustLoad(t) => {
                                    // Single-loader invariant: no one else
                                    // may be loading this page right now.
                                    assert!(
                                        !loading[id as usize].swap(true, Ordering::SeqCst),
                                        "two loaders appointed for the same page"
                                    );
                                    if rng() % 8 == 0 {
                                        loading[id as usize].store(false, Ordering::SeqCst);
                                        lbp.abort_load(page_id, t);
                                    } else {
                                        loading[id as usize].store(false, Ordering::SeqCst);
                                        lbp.finish_load(
                                            page_id,
                                            t,
                                            Page::new_leaf(page_id),
                                            Arc::new(AtomicBool::new(true)),
                                        );
                                    }
                                }
                            }
                        }
                        // Remote-style invalidation of a cached frame.
                        7 => {
                            if let Some(f) = lbp.peek(page_id) {
                                f.valid.store(false, Ordering::Release);
                            }
                        }
                        8 => {
                            if let Some(f) = lbp.peek(page_id) {
                                f.set_valid();
                            }
                        }
                        // Eviction pressure.
                        _ => {
                            lbp.evict(4);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        let s = lbp.stats();
        assert_eq!(
            s.hits.get() + s.invalid_hits.get() + s.misses.get(),
            lookups.load(Ordering::Relaxed),
            "every lookup is exactly one of hit / invalid-hit / miss"
        );
        // len bookkeeping survived the churn: recount from the shards.
        let mut actual = 0;
        for id in 1..=PAGES {
            if lbp.peek(PageId(id)).is_some() {
                actual += 1;
            }
        }
        assert_eq!(lbp.len(), actual, "atomic len must match shard contents");
    }
}
