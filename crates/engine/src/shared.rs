//! Cluster-shared services: the fabric, PMFS, shared storage, the undo
//! store, and the table catalog. One `Shared` bundle is created per cluster
//! and handed (as an `Arc`) to every node engine.

use std::collections::HashMap;
use std::sync::Arc;

use pmp_common::sync::{LockClass, TrackedRwLock};
use pmp_common::{ClusterConfig, PageId, PmpError, Result, TableId};
use pmp_pmfs::buffer::EvictionSink;
use pmp_pmfs::Pmfs;
use pmp_rdma::Fabric;
use pmp_repl::ReplicatedFabric;
use pmp_storage::SharedStorage;

use std::sync::atomic::{AtomicU32, Ordering};

use crate::page::{Page, PAGE_BYTES};
use crate::undo::UndoStore;

/// A (global) secondary index attached to a table: the value column it
/// indexes and the id of the index tree (registered in the catalog as a
/// table of kind [`TableKind::Index`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexRef {
    pub table: TableId,
    pub column: usize,
}

/// What a catalog entry describes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TableKind {
    /// A user table keyed by primary key, with zero or more GSIs.
    Primary { indexes: Vec<IndexRef> },
    /// A secondary-index tree (keys = `(column value, pk)`, empty values).
    Index { parent: TableId },
}

/// Catalog entry. The root page id is immutable: root splits copy the root's
/// contents into two fresh children and turn the root into an internal page
/// in place, so concurrent traversers never chase a moved root.
#[derive(Clone, Debug)]
pub struct TableMeta {
    pub id: TableId,
    pub name: String,
    pub root: PageId,
    pub columns: usize,
    pub kind: TableKind,
}

/// The cluster-wide table catalog. Table creation is an administrative
/// operation performed by the cluster API before workloads run; the catalog
/// itself is replicated metadata and not part of the crash-recovery story.
#[derive(Debug)]
pub struct Catalog {
    tables: TrackedRwLock<HashMap<TableId, Arc<TableMeta>>>,
    next_id: AtomicU32,
}

/// Table catalog (administrative metadata, charge-free lookups).
const CATALOG: LockClass = LockClass::new("engine.catalog");

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    pub fn new() -> Self {
        Catalog {
            tables: TrackedRwLock::new(CATALOG, HashMap::new()),
            next_id: AtomicU32::new(1),
        }
    }

    pub fn allocate_id(&self) -> TableId {
        TableId(self.next_id.fetch_add(1, Ordering::Relaxed)) // lint: allow(relaxed-atomic): monotonic table-id allocator
    }

    pub fn register(&self, meta: TableMeta) -> Arc<TableMeta> {
        let meta = Arc::new(meta);
        self.tables.write().insert(meta.id, Arc::clone(&meta));
        meta
    }

    pub fn get(&self, id: TableId) -> Result<Arc<TableMeta>> {
        self.tables
            .read()
            .get(&id)
            .cloned()
            .ok_or(PmpError::UnknownTable { table: id })
    }

    pub fn table_count(&self) -> usize {
        self.tables.read().len()
    }

    /// All registered tables (standby promotion copies the catalog).
    pub fn all(&self) -> Vec<Arc<TableMeta>> {
        let mut v: Vec<Arc<TableMeta>> = self.tables.read().values().cloned().collect();
        v.sort_by_key(|m| m.id.0);
        v
    }

    /// Ensure the id allocator stays ahead of an externally imported id.
    pub fn bump_next_id(&self, seen: TableId) {
        let _ = self.next_id.fetch_max(seen.0 + 1, Ordering::Relaxed); // lint: allow(relaxed-atomic): monotonic allocator bump; fetch_max keeps it ahead regardless of order
    }
}

/// Write-back sink wiring DBP evictions to the shared page store.
struct StorageSink {
    storage: Arc<SharedStorage<Page>>,
}

impl EvictionSink<Page> for StorageSink {
    fn write_back(&self, page_id: PageId, page: Arc<Page>, _llsn: pmp_common::Llsn) {
        // Eviction write-back failing would be a storage outage; surface
        // loudly rather than silently dropping the only up-to-date copy.
        self.storage
            .write_page(page_id, page)
            .expect("DBP eviction write-back failed");
    }
}

/// Everything shared across the cluster.
#[derive(Debug)]
pub struct Shared {
    pub config: ClusterConfig,
    pub fabric: Arc<Fabric>,
    /// Replication facade every PMFS verb goes through (DESIGN.md §15).
    /// With `config.replicas = 1` it is a transparent passthrough.
    pub repl: Arc<ReplicatedFabric>,
    pub pmfs: Pmfs<Page>,
    pub storage: Arc<SharedStorage<Page>>,
    pub undo: Arc<UndoStore>,
    pub catalog: Arc<Catalog>,
}

impl Shared {
    pub fn new(config: ClusterConfig) -> Arc<Self> {
        let fabric = Arc::new(Fabric::new(config.latency));
        let repl = Arc::new(ReplicatedFabric::new(
            Arc::clone(&fabric),
            config.replicas,
            config.repl_quorum,
        ));
        let storage = Arc::new(SharedStorage::new_with_compression(
            config.storage_latency,
            config.compression,
        ));
        let pmfs = Pmfs::new(Arc::clone(&repl), config.dbp_capacity, PAGE_BYTES);
        pmfs.buffer.set_eviction_sink(Arc::new(StorageSink {
            storage: Arc::clone(&storage),
        }));
        Arc::new(Shared {
            config,
            fabric,
            repl,
            pmfs,
            storage,
            undo: Arc::new(UndoStore::new()),
            catalog: Arc::new(Catalog::new()),
        })
    }

    /// Create a primary table with `columns` u64 columns and `gsi_columns`
    /// global secondary indexes (one per named column). Roots are durable
    /// in shared storage before the call returns.
    pub fn create_table(
        &self,
        name: &str,
        columns: usize,
        gsi_columns: &[usize],
    ) -> Result<Arc<TableMeta>> {
        let mut indexes = Vec::with_capacity(gsi_columns.len());
        for &col in gsi_columns {
            assert!(col < columns, "GSI column out of range");
            let idx_id = self.catalog.allocate_id();
            let root = self.storage.page_store().allocate_page_id();
            self.storage
                .write_page(root, Arc::new(Page::new_leaf(root)))?;
            indexes.push(IndexRef {
                table: idx_id,
                column: col,
            });
            self.catalog.register(TableMeta {
                id: idx_id,
                name: format!("{name}.gsi{col}"),
                root,
                columns: 0,
                kind: TableKind::Index {
                    parent: TableId(0), // patched below once the id is known
                },
            });
        }

        let id = self.catalog.allocate_id();
        let root = self.storage.page_store().allocate_page_id();
        self.storage
            .write_page(root, Arc::new(Page::new_leaf(root)))?;
        // Re-register indexes with the real parent id.
        for idx in &indexes {
            let meta = self.catalog.get(idx.table)?;
            self.catalog.register(TableMeta {
                kind: TableKind::Index { parent: id },
                ..(*meta).clone()
            });
        }
        Ok(self.catalog.register(TableMeta {
            id,
            name: name.to_string(),
            root,
            columns,
            kind: TableKind::Primary { indexes },
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_registers_roots() {
        let shared = Shared::new(ClusterConfig::test(1));
        let meta = shared.create_table("t", 3, &[]).unwrap();
        assert_eq!(meta.columns, 3);
        assert!(matches!(&meta.kind, TableKind::Primary { indexes } if indexes.is_empty()));
        let stored = shared.storage.page_store().read(meta.root).unwrap();
        assert!(stored.is_some(), "root page must be durable");
        assert!(stored.unwrap().is_leaf());
    }

    #[test]
    fn create_table_with_gsis_links_both_ways() {
        let shared = Shared::new(ClusterConfig::test(1));
        let meta = shared.create_table("orders", 4, &[1, 2]).unwrap();
        let TableKind::Primary { indexes } = &meta.kind else {
            panic!("expected primary");
        };
        assert_eq!(indexes.len(), 2);
        for idx in indexes {
            let imeta = shared.catalog.get(idx.table).unwrap();
            assert!(
                matches!(imeta.kind, TableKind::Index { parent } if parent == meta.id),
                "index must point back at its parent"
            );
            assert!(shared
                .storage
                .page_store()
                .read(imeta.root)
                .unwrap()
                .is_some());
        }
    }

    #[test]
    fn catalog_lookup_failures() {
        let c = Catalog::new();
        assert!(matches!(
            c.get(TableId(99)),
            Err(PmpError::UnknownTable { .. })
        ));
    }
}
