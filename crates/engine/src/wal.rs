//! The node's redo pipeline: atomic record groups, LLSN stamping and group
//! commit, §4.4.
//!
//! Two invariants the recovery design depends on are enforced here:
//!
//! 1. **Per-file LLSN monotonicity** — "LLSNs within a single log file are
//!    always incremental". LLSN allocation and the *byte-range reservation*
//!    in the stream happen under one mutex, so record order in the stream
//!    matches LLSN order. The actual encoding of the records into bytes is
//!    done outside that mutex (into the reserved range), keeping the
//!    critical section to an LLSN bump plus a stream-offset bump.
//! 2. **Mini-transaction atomicity** — all records of one mini-transaction
//!    (e.g. the three page images of a split) occupy a single
//!    `LogStream` reservation, and the stream's durability watermark never
//!    advances into an unfilled reservation: a crash either persists the
//!    whole group or none of it.

use std::sync::Arc;

use pmp_common::sync::{LockClass, TrackedMutex};
use pmp_common::{Llsn, Lsn};
use pmp_storage::LogStream;

/// LLSN allocation + reservation critical section. Charge-free: encoding
/// and all storage waits happen outside it.
const WAL_LOG: LockClass = LockClass::new("engine.wal.log");
/// Group-commit serialization. The leader *deliberately* holds this across
/// the simulated fsync — that is the device-side serialization the group
/// commit protocol exists to amortize, so the charge-point assertion is
/// waived for this class.
const WAL_SYNC: LockClass = LockClass::charge_exempt(
    "engine.wal.sync",
    "group-commit leader holds the sync mutex across the fsync it performs on behalf of the batch",
);

use crate::llsn::LlsnClock;
use crate::redo::RedoRecord;

/// The node WAL front-end.
#[derive(Debug)]
pub struct Wal {
    stream: Arc<LogStream>,
    /// Serializes LLSN allocation + byte-range reservation (invariant 1).
    log_mutex: TrackedMutex<()>,
    /// Serializes fsyncs so concurrent committers batch (group commit).
    sync_mutex: TrackedMutex<()>,
    llsn: LlsnClock,
}

impl Wal {
    pub fn new(stream: Arc<LogStream>) -> Self {
        Wal {
            stream,
            log_mutex: TrackedMutex::new(WAL_LOG, ()),
            sync_mutex: TrackedMutex::new(WAL_SYNC, ()),
            llsn: LlsnClock::new(),
        }
    }

    pub fn stream(&self) -> &Arc<LogStream> {
        &self.stream
    }

    pub fn llsn_clock(&self) -> &LlsnClock {
        &self.llsn
    }

    /// Append one atomic group of records. The builder runs under the log
    /// mutex and is handed the LLSN clock: for each page it mutates (the
    /// caller holds those pages' write latches) it allocates `clock.next()`,
    /// stamps the page, and returns the finished records. Returns the byte
    /// LSN one past the group (the force target for commit durability).
    ///
    /// Only LLSN allocation and the byte-range reservation run under
    /// `log_mutex`; the records are encoded into the reserved range
    /// *outside* the lock, so concurrent groups serialize on two counter
    /// bumps instead of on each other's serialization work.
    pub fn log_atomic(&self, build: impl FnOnce(&LlsnClock) -> Vec<RedoRecord>) -> Lsn {
        let (records, reservation) = {
            let _g = self.log_mutex.lock();
            let records = build(&self.llsn);
            debug_assert!(!records.is_empty(), "empty log group");
            let bytes: usize = records.iter().map(|r| r.encoded_len()).sum();
            (records, self.stream.reserve(bytes))
        };
        // Encode outside the log mutex, directly into the reserved range.
        let mut buf = Vec::with_capacity(reservation.len());
        for rec in &records {
            rec.encode_into(&mut buf);
        }
        let end = reservation.end();
        self.stream.fill(reservation, &buf);
        end
    }

    /// Group commit: make everything up to `target` durable. If another
    /// committer's fsync already covered us this returns without I/O;
    /// otherwise exactly one fsync runs at a time and late arrivals ride on
    /// the leader's barrier (`sync_to` itself waits out any fills still in
    /// flight below `target`).
    ///
    /// Returns the achieved durable LSN. A return short of `target` means
    /// a crash truncated the stream underneath us — the caller's records
    /// can never become durable and anything gated on them (a commit
    /// acknowledgement, a DBP push) must not proceed.
    pub fn force(&self, target: Lsn) -> Lsn {
        let durable = self.stream.durable_lsn();
        if durable >= target {
            return durable;
        }
        let _g = self.sync_mutex.lock();
        let durable = self.stream.durable_lsn();
        if durable >= target {
            return durable;
        }
        // One covered sync suffices: `sync_to` waits out fills below
        // `target`, so it returns short of `target` only when a crash
        // truncated the stream underneath us — durability can then never
        // reach `target`, and retrying would spin (charging an fsync per
        // lap) forever.
        self.stream.sync_to(target)
    }

    /// Rule 2 of §4.4: observing a fetched page advances the LLSN clock.
    pub fn observe_llsn(&self, page_llsn: Llsn) {
        self.llsn.observe(page_llsn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redo::RedoOp;
    use pmp_common::{GlobalTrxId, PageId, StorageLatencyConfig, TableId};

    fn wal() -> Wal {
        Wal::new(Arc::new(LogStream::new(StorageLatencyConfig::disabled())))
    }

    fn commit_rec() -> RedoRecord {
        RedoRecord {
            llsn: Llsn::ZERO,
            page: PageId::NULL,
            table: TableId(0),
            op: RedoOp::Commit {
                trx: GlobalTrxId::NONE,
                cts: pmp_common::Cts(1),
            },
        }
    }

    fn remove_rec(llsn: Llsn, key: u128) -> RedoRecord {
        RedoRecord {
            llsn,
            page: PageId(1),
            table: TableId(1),
            op: RedoOp::RemoveRow { key },
        }
    }

    #[test]
    fn log_atomic_returns_end_lsn() {
        let w = wal();
        let end1 = w.log_atomic(|_| vec![commit_rec()]);
        let end2 = w.log_atomic(|_| vec![commit_rec()]);
        assert!(end2 > end1);
        assert_eq!(w.stream().end_lsn(), end2);
    }

    #[test]
    fn force_is_batched() {
        let w = wal();
        let end = w.log_atomic(|_| vec![commit_rec()]);
        w.force(end);
        let syncs = w.stream().sync_count();
        w.force(end); // already durable → no new fsync
        assert_eq!(w.stream().sync_count(), syncs);
    }

    #[test]
    fn records_decode_back_in_order() {
        let w = wal();
        w.log_atomic(|c| vec![remove_rec(c.next(), 1), remove_rec(c.next(), 2)]);
        w.log_atomic(|c| vec![remove_rec(c.next(), 3)]);
        let end = w.stream().end_lsn();
        w.force(end);

        let chunk = w.stream().read_chunk(Lsn::ZERO, usize::MAX);
        let mut pos = 0;
        let mut llsns = Vec::new();
        while let Some((rec, used)) = RedoRecord::decode_from(&chunk.data[pos..]).unwrap() {
            llsns.push(rec.llsn);
            pos += used;
        }
        assert_eq!(llsns, vec![Llsn(1), Llsn(2), Llsn(3)]);
    }

    #[test]
    fn concurrent_groups_keep_llsn_monotone_in_stream() {
        use std::thread;
        let w = Arc::new(wal());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let w = Arc::clone(&w);
                thread::spawn(move || {
                    for _ in 0..200 {
                        w.log_atomic(|c| vec![remove_rec(c.next(), 0), remove_rec(c.next(), 1)]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        w.force(w.stream().end_lsn());
        let chunk = w.stream().read_chunk(Lsn::ZERO, usize::MAX);
        let mut pos = 0;
        let mut last = Llsn::ZERO;
        let mut count = 0;
        while let Some((rec, used)) = RedoRecord::decode_from(&chunk.data[pos..]).unwrap() {
            assert!(
                rec.llsn > last,
                "stream order must match LLSN order (invariant 1)"
            );
            last = rec.llsn;
            pos += used;
            count += 1;
        }
        assert_eq!(count, 4 * 200 * 2);
    }

    #[test]
    fn observe_feeds_clock() {
        let w = wal();
        w.observe_llsn(Llsn(41));
        let end = w.log_atomic(|c| vec![remove_rec(c.next(), 9)]);
        w.force(end);
        let chunk = w.stream().read_chunk(Lsn::ZERO, usize::MAX);
        let (rec, _) = RedoRecord::decode_from(&chunk.data).unwrap().unwrap();
        assert_eq!(rec.llsn, Llsn(42));
    }
}
