//! The node's redo pipeline: atomic record groups, LLSN stamping and group
//! commit, §4.4.
//!
//! Two invariants the recovery design depends on are enforced here:
//!
//! 1. **Per-file LLSN monotonicity** — "LLSNs within a single log file are
//!    always incremental". LLSN allocation and the *byte-range reservation*
//!    in the stream happen under one mutex, so record order in the stream
//!    matches LLSN order. The actual encoding of the records into bytes is
//!    done outside that mutex (into the reserved range), keeping the
//!    critical section to an LLSN bump plus a stream-offset bump.
//! 2. **Mini-transaction atomicity** — all records of one mini-transaction
//!    (e.g. the three page images of a split) occupy a single
//!    `LogStream` reservation, and the stream's durability watermark never
//!    advances into an unfilled reservation: a crash either persists the
//!    whole group or none of it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pmp_common::sync::{LockClass, TrackedMutex};
use pmp_common::{Counter, Llsn, Lsn};
use pmp_rdma::precise_wait_ns;
use pmp_storage::LogStream;

/// LLSN allocation + reservation critical section. Charge-free: encoding
/// and all storage waits happen outside it.
const WAL_LOG: LockClass = LockClass::new("engine.wal.log");
/// Group-commit serialization. The leader *deliberately* holds this across
/// the simulated fsync — that is the device-side serialization the group
/// commit protocol exists to amortize, so the charge-point assertion is
/// waived for this class.
const WAL_SYNC: LockClass = LockClass::charge_exempt(
    "engine.wal.sync",
    "group-commit leader holds the sync mutex across the fsync it performs on behalf of the batch",
);

use crate::llsn::LlsnClock;
use crate::redo::RedoRecord;

/// Consecutive empty collect windows after which the leader stops waiting.
/// Any follower that rides a later fsync re-arms the window, so a lone
/// committer pays the window at most this many times per concurrency lull.
const EMPTY_WINDOW_LIMIT: u64 = 3;

/// Group-commit observability: how well the bounded-wait window amortizes
/// fsyncs. `fsyncs / commits < 1.0` at high concurrency is the whole point.
#[derive(Debug, Default)]
pub struct WalGroupStats {
    /// Fsync batches led (each charged exactly one storage sync).
    pub batches: Counter,
    /// Committers whose target was already durable when they got the sync
    /// mutex — they rode another leader's fsync for free.
    pub riders: Counter,
    /// Collect windows the leader actually waited out.
    pub windows_waited: Counter,
    /// Windows that closed without a single new arrival.
    pub empty_windows: Counter,
}

/// The node WAL front-end.
#[derive(Debug)]
pub struct Wal {
    stream: Arc<LogStream>,
    /// Serializes LLSN allocation + byte-range reservation (invariant 1).
    log_mutex: TrackedMutex<()>,
    /// Serializes fsyncs so concurrent committers batch (group commit).
    sync_mutex: TrackedMutex<()>,
    llsn: LlsnClock,
    /// Bounded-wait collect window (ns). 0 = classic ride-only batching.
    window_ns: u64,
    /// Highest force target announced by any committer, durable or not.
    /// Announced *before* queueing on the sync mutex, so the current
    /// leader's fsync can cover arrivals it never sees as followers.
    pending_max: AtomicU64,
    /// Monotone count of `force` slow-path entries; the leader snapshots it
    /// around the collect window to detect whether anyone showed up.
    arrivals: AtomicU64,
    /// Consecutive windows that closed empty (adaptivity state).
    empty_streak: AtomicU64,
    group: WalGroupStats,
}

impl Wal {
    pub fn new(stream: Arc<LogStream>, group_window_us: u64) -> Self {
        Wal {
            stream,
            log_mutex: TrackedMutex::new(WAL_LOG, ()),
            sync_mutex: TrackedMutex::new(WAL_SYNC, ()),
            llsn: LlsnClock::new(),
            window_ns: group_window_us.saturating_mul(1_000),
            pending_max: AtomicU64::new(0),
            arrivals: AtomicU64::new(0),
            empty_streak: AtomicU64::new(0),
            group: WalGroupStats::default(),
        }
    }

    pub fn group_stats(&self) -> &WalGroupStats {
        &self.group
    }

    pub fn stream(&self) -> &Arc<LogStream> {
        &self.stream
    }

    pub fn llsn_clock(&self) -> &LlsnClock {
        &self.llsn
    }

    /// Append one atomic group of records. The builder runs under the log
    /// mutex and is handed the LLSN clock: for each page it mutates (the
    /// caller holds those pages' write latches) it allocates `clock.next()`,
    /// stamps the page, and returns the finished records. Returns the byte
    /// LSN one past the group (the force target for commit durability).
    ///
    /// Only LLSN allocation and the byte-range reservation run under
    /// `log_mutex`; the records are encoded into the reserved range
    /// *outside* the lock, so concurrent groups serialize on two counter
    /// bumps instead of on each other's serialization work.
    pub fn log_atomic(&self, build: impl FnOnce(&LlsnClock) -> Vec<RedoRecord>) -> Lsn {
        let (records, reservation) = {
            let _g = self.log_mutex.lock();
            let records = build(&self.llsn);
            debug_assert!(!records.is_empty(), "empty log group");
            let bytes: usize = records.iter().map(|r| r.encoded_len()).sum();
            (records, self.stream.reserve(bytes))
        };
        // Encode outside the log mutex, directly into the reserved range.
        let mut buf = Vec::with_capacity(reservation.len());
        for rec in &records {
            rec.encode_into(&mut buf);
        }
        let end = reservation.end();
        self.stream.fill(reservation, &buf);
        end
    }

    /// Group commit: make everything up to `target` durable. If another
    /// committer's fsync already covered us this returns without I/O;
    /// otherwise exactly one fsync runs at a time and late arrivals ride on
    /// the leader's barrier (`sync_to` itself waits out any fills still in
    /// flight below `target`).
    ///
    /// Returns the achieved durable LSN. A return short of `target` means
    /// a crash truncated the stream underneath us — the caller's records
    /// can never become durable and anything gated on them (a commit
    /// acknowledgement, a DBP push) must not proceed.
    pub fn force(&self, target: Lsn) -> Lsn {
        let durable = self.stream.durable_lsn();
        if durable >= target {
            return durable;
        }
        // Announce our target before queueing on the sync mutex: the fill is
        // already complete (`force` runs after `log_atomic`), so the current
        // leader may fold us into its fsync even though we never reach the
        // mutex while it holds it.
        self.pending_max.fetch_max(target.0, Ordering::Release);
        self.arrivals.fetch_add(1, Ordering::Release);
        let _g = self.sync_mutex.lock();
        let durable = self.stream.durable_lsn();
        if durable >= target {
            // A leader's batch covered us; concurrency is live, so re-arm
            // the collect window if emptiness had disabled it.
            self.group.riders.inc();
            self.empty_streak.store(0, Ordering::Relaxed);
            return durable;
        }
        // We are the leader. Hold the door open for a bounded window so
        // followers arriving right behind us share this fsync instead of
        // each paying their own. The wait happens under the (charge-exempt)
        // sync mutex by design: it *is* the batch-formation time the group
        // commit protocol trades for fewer fsyncs. Two gates keep the wait
        // from becoming pure latency:
        //
        // * a group that has already formed skips it — if some follower
        //   announced an LSN beyond ours, this fsync amortizes without any
        //   waiting, and under saturation that is the steady state (every
        //   batch would otherwise pay the window for stragglers it mostly
        //   doesn't catch);
        // * adaptivity — after `EMPTY_WINDOW_LIMIT` windows with zero
        //   arrivals a lone committer stops paying the wait until riders
        //   reappear.
        if self.window_ns > 0
            && self.pending_max.load(Ordering::Acquire) <= target.0
            && self.empty_streak.load(Ordering::Relaxed) < EMPTY_WINDOW_LIMIT
        {
            let before = self.arrivals.load(Ordering::Acquire);
            self.group.windows_waited.inc();
            precise_wait_ns(self.window_ns);
            if self.arrivals.load(Ordering::Acquire) == before {
                self.group.empty_windows.inc();
                self.empty_streak.fetch_add(1, Ordering::Relaxed);
            } else {
                self.empty_streak.store(0, Ordering::Relaxed);
            }
        }
        // Sync the whole announced batch, not just our own target. A
        // pending announcement past the end of a crash-truncated stream is
        // harmless: `sync_to` bounds its fill wait through `data.len()` and
        // returns the achieved watermark, and each caller judges that
        // against its *own* target.
        let group_target = Lsn(target.0.max(self.pending_max.load(Ordering::Acquire)));
        self.group.batches.inc();
        // One covered sync suffices: `sync_to` waits out fills below the
        // target, so it returns short only when a crash truncated the
        // stream underneath us — durability can then never reach `target`,
        // and retrying would spin (charging an fsync per lap) forever.
        self.stream.sync_to(group_target)
    }

    /// Rule 2 of §4.4: observing a fetched page advances the LLSN clock.
    pub fn observe_llsn(&self, page_llsn: Llsn) {
        self.llsn.observe(page_llsn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redo::RedoOp;
    use pmp_common::{GlobalTrxId, PageId, StorageLatencyConfig, TableId};

    fn wal() -> Wal {
        wal_with_window(0)
    }

    fn wal_with_window(window_us: u64) -> Wal {
        Wal::new(
            Arc::new(LogStream::new(StorageLatencyConfig::disabled())),
            window_us,
        )
    }

    fn commit_rec() -> RedoRecord {
        RedoRecord {
            llsn: Llsn::ZERO,
            page: PageId::NULL,
            table: TableId(0),
            op: RedoOp::Commit {
                trx: GlobalTrxId::NONE,
                cts: pmp_common::Cts(1),
            },
        }
    }

    fn remove_rec(llsn: Llsn, key: u128) -> RedoRecord {
        RedoRecord {
            llsn,
            page: PageId(1),
            table: TableId(1),
            op: RedoOp::RemoveRow { key },
        }
    }

    #[test]
    fn log_atomic_returns_end_lsn() {
        let w = wal();
        let end1 = w.log_atomic(|_| vec![commit_rec()]);
        let end2 = w.log_atomic(|_| vec![commit_rec()]);
        assert!(end2 > end1);
        assert_eq!(w.stream().end_lsn(), end2);
    }

    #[test]
    fn force_is_batched() {
        let w = wal();
        let end = w.log_atomic(|_| vec![commit_rec()]);
        w.force(end);
        let syncs = w.stream().sync_count();
        w.force(end); // already durable → no new fsync
        assert_eq!(w.stream().sync_count(), syncs);
    }

    #[test]
    fn records_decode_back_in_order() {
        let w = wal();
        w.log_atomic(|c| vec![remove_rec(c.next(), 1), remove_rec(c.next(), 2)]);
        w.log_atomic(|c| vec![remove_rec(c.next(), 3)]);
        let end = w.stream().end_lsn();
        w.force(end);

        let chunk = w.stream().read_chunk(Lsn::ZERO, usize::MAX);
        let mut pos = 0;
        let mut llsns = Vec::new();
        while let Some((rec, used)) = RedoRecord::decode_from(&chunk.data[pos..]).unwrap() {
            llsns.push(rec.llsn);
            pos += used;
        }
        assert_eq!(llsns, vec![Llsn(1), Llsn(2), Llsn(3)]);
    }

    #[test]
    fn concurrent_groups_keep_llsn_monotone_in_stream() {
        use std::thread;
        let w = Arc::new(wal());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let w = Arc::clone(&w);
                thread::spawn(move || {
                    for _ in 0..200 {
                        w.log_atomic(|c| vec![remove_rec(c.next(), 0), remove_rec(c.next(), 1)]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        w.force(w.stream().end_lsn());
        let chunk = w.stream().read_chunk(Lsn::ZERO, usize::MAX);
        let mut pos = 0;
        let mut last = Llsn::ZERO;
        let mut count = 0;
        while let Some((rec, used)) = RedoRecord::decode_from(&chunk.data[pos..]).unwrap() {
            assert!(
                rec.llsn > last,
                "stream order must match LLSN order (invariant 1)"
            );
            last = rec.llsn;
            pos += used;
            count += 1;
        }
        assert_eq!(count, 4 * 200 * 2);
    }

    #[test]
    fn empty_windows_disable_the_wait() {
        // A lone committer pays the collect window only until the adaptive
        // streak trips, then every further force skips it.
        let w = wal_with_window(100);
        for _ in 0..10 {
            let end = w.log_atomic(|_| vec![commit_rec()]);
            w.force(end);
        }
        let g = w.group_stats();
        assert_eq!(g.windows_waited.get(), EMPTY_WINDOW_LIMIT);
        assert_eq!(g.empty_windows.get(), EMPTY_WINDOW_LIMIT);
        assert_eq!(g.batches.get(), 10, "every lone force still fsyncs");
        assert_eq!(g.riders.get(), 0);
        assert_eq!(w.stream().sync_count(), 10);
    }

    #[test]
    fn window_folds_concurrent_committer_into_leader_fsync() {
        use std::thread;
        let w = Arc::new(wal_with_window(20_000)); // generous: 20ms
        let end1 = w.log_atomic(|_| vec![commit_rec()]);
        let leader = {
            let w = Arc::clone(&w);
            thread::spawn(move || w.force(end1))
        };
        // Wait until the leader is inside its collect window, then arrive.
        while w.group_stats().windows_waited.get() == 0 {
            thread::yield_now();
        }
        let end2 = w.log_atomic(|_| vec![commit_rec()]);
        let achieved = w.force(end2);
        assert!(leader.join().unwrap() >= end1);
        assert!(achieved >= end2, "follower covered by the leader's batch");
        assert_eq!(w.stream().sync_count(), 1, "one fsync for both commits");
        assert_eq!(w.group_stats().batches.get(), 1);
        assert_eq!(w.group_stats().riders.get(), 1);
        assert_eq!(
            w.group_stats().empty_windows.get(),
            0,
            "an occupied window must not count toward the adaptive streak"
        );
    }

    #[test]
    fn riders_rearm_a_disabled_window() {
        use std::thread;
        let w = Arc::new(wal_with_window(100));
        // Trip the adaptive streak with lone commits.
        for _ in 0..5 {
            let end = w.log_atomic(|_| vec![commit_rec()]);
            w.force(end);
        }
        assert_eq!(w.group_stats().windows_waited.get(), EMPTY_WINDOW_LIMIT);
        // A burst of concurrent committers produces riders, re-arming the
        // window for the next lull.
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let w = Arc::clone(&w);
                thread::spawn(move || {
                    for _ in 0..50 {
                        let end = w.log_atomic(|_| vec![commit_rec()]);
                        w.force(end);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        if w.group_stats().riders.get() == 0 {
            // Scheduling never overlapped two committers — nothing to
            // assert about re-arming.
            return;
        }
        if w.empty_streak.load(Ordering::Relaxed) >= EMPTY_WINDOW_LIMIT {
            // The burst's serialized tail re-tripped the streak with lone
            // commits *after* the last rider (common on one CPU): the
            // window is legitimately disabled again, so there is nothing
            // to assert about the next commit.
            return;
        }
        let waited_before = w.group_stats().windows_waited.get();
        let end = w.log_atomic(|_| vec![commit_rec()]);
        w.force(end);
        assert!(
            w.group_stats().windows_waited.get() > waited_before,
            "a rider must reset the empty streak and re-enable the window"
        );
    }

    #[test]
    fn group_force_amortizes_fsyncs_under_concurrency() {
        use std::thread;
        let w = Arc::new(wal_with_window(100));
        let committers = 8;
        let per = 50;
        let handles: Vec<_> = (0..committers)
            .map(|_| {
                let w = Arc::clone(&w);
                thread::spawn(move || {
                    for _ in 0..per {
                        let end = w.log_atomic(|_| vec![commit_rec()]);
                        assert!(w.force(end) >= end);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = committers * per;
        assert!(
            w.stream().sync_count() <= total,
            "never more fsyncs than forces"
        );
        assert_eq!(
            w.stream().sync_count(),
            w.group_stats().batches.get(),
            "every fsync on this stream is a led batch"
        );
    }

    #[test]
    fn observe_feeds_clock() {
        let w = wal();
        w.observe_llsn(Llsn(41));
        let end = w.log_atomic(|c| vec![remove_rec(c.next(), 9)]);
        w.force(end);
        let chunk = w.stream().read_chunk(Lsn::ZERO, usize::MAX);
        let (rec, _) = RedoRecord::decode_from(&chunk.data).unwrap().unwrap();
        assert_eq!(rec.llsn, Llsn(42));
    }
}
