//! The node's redo pipeline: atomic record groups, LLSN stamping and group
//! commit, §4.4.
//!
//! Two invariants the recovery design depends on are enforced here:
//!
//! 1. **Per-file LLSN monotonicity** — "LLSNs within a single log file are
//!    always incremental". LLSN allocation and the *byte-range reservation*
//!    in the stream happen under one mutex, so record order in the stream
//!    matches LLSN order. The actual encoding of the records into bytes is
//!    done outside that mutex (into the reserved range), keeping the
//!    critical section to an LLSN bump plus a stream-offset bump.
//! 2. **Mini-transaction atomicity** — all records of one mini-transaction
//!    (e.g. the three page images of a split) occupy a single
//!    `LogStream` reservation, and the stream's durability watermark never
//!    advances into an unfilled reservation: a crash either persists the
//!    whole group or none of it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pmp_common::sync::{sched_point, LockClass, TrackedMutex};
use pmp_common::{CompressionConfig, Counter, Llsn, Lsn};
use pmp_rdma::precise_wait_ns;
use pmp_storage::{Codec, LogStream};

/// LLSN allocation + reservation critical section. Charge-free: encoding
/// and all storage waits happen outside it.
const WAL_LOG: LockClass = LockClass::new("engine.wal.log");
/// Group-commit serialization. The leader *deliberately* holds this across
/// the simulated fsync — that is the device-side serialization the group
/// commit protocol exists to amortize, so the charge-point assertion is
/// waived for this class.
const WAL_SYNC: LockClass = LockClass::charge_exempt(
    "engine.wal.sync",
    "group-commit leader holds the sync mutex across the fsync it performs on behalf of the batch",
);

use crate::llsn::LlsnClock;
use crate::redo::{LogFrame, RedoRecord};

/// Consecutive empty collect windows after which the leader stops waiting.
/// Any follower that rides a later fsync re-arms the window, so a lone
/// committer pays the window at most this many times per concurrency lull.
const EMPTY_WINDOW_LIMIT: u64 = 3;

/// Group-commit observability: how well the bounded-wait window amortizes
/// fsyncs. `fsyncs / commits < 1.0` at high concurrency is the whole point.
#[derive(Debug, Default)]
pub struct WalGroupStats {
    /// Fsync batches led (each charged exactly one storage sync).
    pub batches: Counter,
    /// Committers whose target was already durable when they got the sync
    /// mutex — they rode another leader's fsync for free.
    pub riders: Counter,
    /// Collect windows the leader actually waited out.
    pub windows_waited: Counter,
    /// Windows that closed without a single new arrival.
    pub empty_windows: Counter,
}

/// Callback fired (with the achieved durable LSN) by whichever fsync batch
/// covers an async committer's target — the group-commit wait class of the
/// transaction scheduler.
pub type ForceCallback = Box<dyn FnOnce(Lsn) + Send>;

/// Waker registered by the async force path. The sync-mutex pending-list
/// callback registry.
const WAL_PENDING: LockClass = LockClass::new("engine.wal.pending");

struct PendingForce {
    id: u64,
    target: Lsn,
    cb: ForceCallback,
}

impl std::fmt::Debug for PendingForce {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingForce")
            .field("id", &self.id)
            .field("target", &self.target)
            .finish_non_exhaustive()
    }
}

/// The outcome of [`Wal::force_async`].
#[derive(Debug)]
pub enum ForceOutcome {
    /// The stream is durable at the returned LSN. A value short of the
    /// requested target means a crash truncated the stream — same contract
    /// as [`Wal::force`].
    Durable(Lsn),
    /// A leader holds the sync mutex; the registered callback fires once a
    /// covering fsync completes (or the crash drain runs).
    Pending,
}

/// The node WAL front-end.
#[derive(Debug)]
pub struct Wal {
    stream: Arc<LogStream>,
    /// Serializes LLSN allocation + byte-range reservation (invariant 1).
    log_mutex: TrackedMutex<()>,
    /// Serializes fsyncs so concurrent committers batch (group commit).
    sync_mutex: TrackedMutex<()>,
    llsn: LlsnClock,
    /// Bounded-wait collect window (ns). 0 = classic ride-only batching.
    window_ns: u64,
    /// Highest force target announced by any committer, durable or not.
    /// Announced *before* queueing on the sync mutex, so the current
    /// leader's fsync can cover arrivals it never sees as followers.
    pending_max: AtomicU64,
    /// Monotone count of `force` slow-path entries; the leader snapshots it
    /// around the collect window to detect whether anyone showed up.
    arrivals: AtomicU64,
    /// Consecutive windows that closed empty (adaptivity state).
    empty_streak: AtomicU64,
    /// Async committers parked on this group-commit round. Every entry is
    /// guaranteed a fire: a leader never releases the sync mutex while an
    /// unsatisfied entry exists (it loops, re-syncing to the grown
    /// `pending_max`), and `drain_pending_on_crash` fires the rest with the
    /// truncated watermark.
    pending_cbs: TrackedMutex<Vec<PendingForce>>,
    next_cb_id: AtomicU64,
    group: WalGroupStats,
    /// With `log_comp` on, every group is wrapped in a [`LogFrame`] and
    /// compressed at fill time (outside the log mutex); the saved tail of
    /// the reservation is returned to the stream as a dead range.
    framed: bool,
    codec: Codec,
}

impl Wal {
    /// Uncompressed WAL: groups are raw concatenated records, bit-for-bit
    /// the pre-compression format.
    pub fn new(stream: Arc<LogStream>, group_window_us: u64) -> Self {
        Self::new_with_compression(stream, group_window_us, CompressionConfig::off())
    }

    pub fn new_with_compression(
        stream: Arc<LogStream>,
        group_window_us: u64,
        comp: CompressionConfig,
    ) -> Self {
        Wal {
            stream,
            log_mutex: TrackedMutex::new(WAL_LOG, ()),
            sync_mutex: TrackedMutex::new(WAL_SYNC, ()),
            llsn: LlsnClock::new(),
            window_ns: group_window_us.saturating_mul(1_000),
            pending_max: AtomicU64::new(0),
            arrivals: AtomicU64::new(0),
            empty_streak: AtomicU64::new(0),
            pending_cbs: TrackedMutex::new(WAL_PENDING, Vec::new()),
            next_cb_id: AtomicU64::new(0),
            group: WalGroupStats::default(),
            framed: comp.log_enabled(),
            codec: Codec::new(comp.compression),
        }
    }

    /// Whether groups on this stream are wrapped in [`LogFrame`]s.
    pub fn framed(&self) -> bool {
        self.framed
    }

    pub fn group_stats(&self) -> &WalGroupStats {
        &self.group
    }

    pub fn stream(&self) -> &Arc<LogStream> {
        &self.stream
    }

    pub fn llsn_clock(&self) -> &LlsnClock {
        &self.llsn
    }

    /// Append one atomic group of records. The builder runs under the log
    /// mutex and is handed the LLSN clock: for each page it mutates (the
    /// caller holds those pages' write latches) it allocates `clock.next()`,
    /// stamps the page, and returns the finished records. Returns the byte
    /// LSN one past the group (the force target for commit durability).
    ///
    /// Only LLSN allocation and the byte-range reservation run under
    /// `log_mutex`; the records are encoded into the reserved range
    /// *outside* the lock, so concurrent groups serialize on two counter
    /// bumps instead of on each other's serialization work.
    pub fn log_atomic(&self, build: impl FnOnce(&LlsnClock) -> Vec<RedoRecord>) -> Lsn {
        let (records, reservation) = {
            let _g = self.log_mutex.lock();
            let records = build(&self.llsn);
            debug_assert!(!records.is_empty(), "empty log group");
            let bytes: usize = records.iter().map(|r| r.encoded_len()).sum();
            let reserve = if self.framed {
                // Worst case: the codec does not win and the frame stores
                // the raw bytes. Whatever compression saves comes back as a
                // dead range at fill time — the reservation size (and with
                // it the force target) stays deterministic under the mutex.
                LogFrame::OVERHEAD + bytes
            } else {
                bytes
            };
            (records, self.stream.reserve(reserve))
        };
        // Encode (and compress) outside the log mutex, directly into the
        // reserved range — the critical section stays two counter bumps.
        let mut buf = Vec::with_capacity(reservation.len());
        for rec in &records {
            rec.encode_into(&mut buf);
        }
        let end = reservation.end();
        if self.framed {
            let raw_len = buf.len();
            let frame = LogFrame::encode(&self.codec, &buf);
            debug_assert!(frame.len() <= reservation.len());
            self.stream.fill_prefix(reservation, &frame, raw_len);
        } else {
            self.stream.fill(reservation, &buf);
        }
        end
    }

    /// Group commit: make everything up to `target` durable. If another
    /// committer's fsync already covered us this returns without I/O;
    /// otherwise exactly one fsync runs at a time and late arrivals ride on
    /// the leader's barrier (`sync_to` itself waits out any fills still in
    /// flight below `target`).
    ///
    /// Returns the achieved durable LSN. A return short of `target` means
    /// a crash truncated the stream underneath us — the caller's records
    /// can never become durable and anything gated on them (a commit
    /// acknowledgement, a DBP push) must not proceed.
    pub fn force(&self, target: Lsn) -> Lsn {
        let durable = self.stream.durable_lsn();
        if durable >= target {
            return durable;
        }
        // Announce our target before queueing on the sync mutex: the fill is
        // already complete (`force` runs after `log_atomic`), so the current
        // leader may fold us into its fsync even though we never reach the
        // mutex while it holds it.
        self.pending_max.fetch_max(target.0, Ordering::Release);
        self.arrivals.fetch_add(1, Ordering::Release);
        sched_point("wal.force.announce-window");
        let _g = self.sync_mutex.lock();
        let durable = self.stream.durable_lsn();
        if durable >= target {
            // A leader's batch covered us; concurrency is live, so re-arm
            // the collect window if emptiness had disabled it.
            self.group.riders.inc();
            self.empty_streak.store(0, Ordering::Relaxed); // lint: allow(relaxed-atomic): adaptive group-commit heuristic; a stale read costs one extra empty window
            drop(_g);
            self.rescue_orphans();
            return durable;
        }
        // We are the leader.
        let (achieved, fire) = self.lead_sync(target);
        drop(_g);
        for (cb, lsn) in fire {
            cb(lsn);
        }
        self.rescue_orphans();
        achieved
    }

    /// Serve async entries that slipped past a leader's final pending-scan
    /// (registered after the scan, before the mutex release). Every path
    /// that held the sync mutex calls this after releasing it, so a
    /// registrant whose `try_lock` failed is always reached: the holder it
    /// lost to rescans here after releasing.
    fn rescue_orphans(&self) {
        loop {
            if self.pending_cbs.lock().is_empty() {
                return;
            }
            let Some(_g) = self.sync_mutex.try_lock() else {
                // An active leader owns the list now (its own rescue pass
                // runs after it releases).
                return;
            };
            let target = {
                let cbs = self.pending_cbs.lock();
                match cbs.iter().map(|c| c.target).max() {
                    Some(t) => t,
                    None => return,
                }
            };
            let durable = self.stream.durable_lsn();
            let (_achieved, fire) = if durable >= target {
                let mut fire: Vec<(ForceCallback, Lsn)> = Vec::new();
                let mut cbs = self.pending_cbs.lock();
                let mut i = 0;
                while i < cbs.len() {
                    if cbs[i].target <= durable {
                        let e = cbs.remove(i);
                        fire.push((e.cb, durable));
                    } else {
                        i += 1;
                    }
                }
                drop(cbs);
                (durable, fire)
            } else {
                self.lead_sync(target)
            };
            drop(_g);
            for (cb, lsn) in fire {
                cb(lsn);
            }
        }
    }

    /// Leader body shared by [`Wal::force`] and [`Wal::force_async`]. Must
    /// be called with the sync mutex held and `target` not yet durable.
    /// Returns the achieved watermark plus the satisfied async callbacks,
    /// which the caller fires *after* releasing the sync mutex (they wake
    /// parked committers, which may immediately re-enter `force`).
    fn lead_sync(&self, target: Lsn) -> (Lsn, Vec<(ForceCallback, Lsn)>) {
        // Hold the door open for a bounded window so followers arriving
        // right behind us share this fsync instead of each paying their
        // own. The wait happens under the (charge-exempt) sync mutex by
        // design: it *is* the batch-formation time the group commit
        // protocol trades for fewer fsyncs. Two gates keep the wait from
        // becoming pure latency:
        //
        // * a group that has already formed skips it — if some follower
        //   announced an LSN beyond ours, this fsync amortizes without any
        //   waiting, and under saturation that is the steady state (every
        //   batch would otherwise pay the window for stragglers it mostly
        //   doesn't catch);
        // * adaptivity — after `EMPTY_WINDOW_LIMIT` windows with zero
        //   arrivals a lone committer stops paying the wait until riders
        //   reappear.
        if self.window_ns > 0
            && self.pending_max.load(Ordering::Acquire) <= target.0
            // lint: allow(relaxed-atomic): adaptive group-commit heuristic; a stale read costs one extra empty window
            && self.empty_streak.load(Ordering::Relaxed) < EMPTY_WINDOW_LIMIT
        {
            let before = self.arrivals.load(Ordering::Acquire);
            self.group.windows_waited.inc();
            precise_wait_ns(self.window_ns);
            if self.arrivals.load(Ordering::Acquire) == before {
                self.group.empty_windows.inc();
                self.empty_streak.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed-atomic): adaptive group-commit heuristic; a stale read costs one extra empty window
            } else {
                self.empty_streak.store(0, Ordering::Relaxed); // lint: allow(relaxed-atomic): adaptive group-commit heuristic; a stale read costs one extra empty window
            }
        }
        let mut fire: Vec<(ForceCallback, Lsn)> = Vec::new();
        loop {
            // Sync the whole announced batch, not just our own target. A
            // pending announcement past the end of a crash-truncated stream
            // is harmless: `sync_to` bounds its fill wait through
            // `data.len()` and returns the achieved watermark, and each
            // caller judges that against its *own* target.
            let group_target = Lsn(target.0.max(self.pending_max.load(Ordering::Acquire)));
            self.group.batches.inc();
            // One covered sync suffices: `sync_to` waits out fills below
            // the target, so it returns short only when a crash truncated
            // the stream underneath us — durability can then never reach
            // `target`, and retrying would spin (charging an fsync per lap)
            // forever.
            sched_point("wal.lead-sync.window");
            let achieved = self.stream.sync_to(group_target);
            let unsatisfied = {
                let mut cbs = self.pending_cbs.lock();
                let mut i = 0;
                while i < cbs.len() {
                    if cbs[i].target <= achieved {
                        let e = cbs.remove(i);
                        fire.push((e.cb, achieved));
                    } else {
                        i += 1;
                    }
                }
                !cbs.is_empty()
            };
            if achieved < group_target {
                // Crash truncation: the stream can never reach the
                // remaining targets, so fire everything left with the
                // truncated watermark — each caller judges it against its
                // own target and fails the commit.
                let rest: Vec<PendingForce> = std::mem::take(&mut *self.pending_cbs.lock());
                for e in rest {
                    fire.push((e.cb, achieved));
                }
                return (achieved, fire);
            }
            if !unsatisfied {
                return (achieved, fire);
            }
            // Async committers announced (and registered) after our
            // `pending_max` read: their announce preceded their
            // registration, so looping with a fresh read strictly grows the
            // group target and this terminates.
        }
    }

    /// Async group commit: like [`Wal::force`], but instead of blocking
    /// behind an active leader the caller registers `on_durable` and parks.
    /// Returns [`ForceOutcome::Durable`] when the target is already covered
    /// or this thread led the batch itself (bounded inline work), and
    /// [`ForceOutcome::Pending`] when an active leader adopted the
    /// callback.
    pub fn force_async(&self, target: Lsn, on_durable: ForceCallback) -> ForceOutcome {
        let durable = self.stream.durable_lsn();
        if durable >= target {
            return ForceOutcome::Durable(durable);
        }
        self.pending_max.fetch_max(target.0, Ordering::Release);
        self.arrivals.fetch_add(1, Ordering::Release);
        // Register *before* probing the sync mutex: a leader never releases
        // the mutex with unsatisfied entries on the list, so once we are
        // registered either some leader fires us or our own try_lock below
        // succeeds and we lead.
        let id = self.next_cb_id.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed-atomic): monotonic callback-id allocator
        self.pending_cbs.lock().push(PendingForce {
            id,
            target,
            cb: on_durable,
        });
        // Publish-then-check: a leader may have finished covering `target`
        // between the first durable check and our registration.
        let durable = self.stream.durable_lsn();
        if durable >= target {
            let mut cbs = self.pending_cbs.lock();
            if let Some(pos) = cbs.iter().position(|c| c.id == id) {
                cbs.remove(pos);
                return ForceOutcome::Durable(durable);
            }
            // A leader already claimed the callback; the wake is imminent
            // and the parked re-run will see the durable watermark.
            return ForceOutcome::Pending;
        }
        match self.sync_mutex.try_lock() {
            Some(_g) => {
                // Lead the batch inline (bounded: window + one or a few
                // covered fsyncs). Our own callback fires as part of it —
                // a harmless self-wake the parker absorbs.
                let (achieved, fire) = self.lead_sync(target);
                drop(_g);
                for (cb, lsn) in fire {
                    cb(lsn);
                }
                self.rescue_orphans();
                ForceOutcome::Durable(achieved)
            }
            None => ForceOutcome::Pending,
        }
    }

    /// Crash path: fire every pending async committer with the truncated
    /// durable watermark. Their targets can never be reached, so the parked
    /// commits wake, observe `forced < end` (or the epoch bump) and fail
    /// with `NodeUnavailable` — the "never acked" guarantee the
    /// failure-injection tests assert.
    pub fn drain_pending_on_crash(&self) {
        let durable = self.stream.durable_lsn();
        let cbs: Vec<PendingForce> = std::mem::take(&mut *self.pending_cbs.lock());
        for e in cbs {
            (e.cb)(durable);
        }
    }

    /// Rule 2 of §4.4: observing a fetched page advances the LLSN clock.
    pub fn observe_llsn(&self, page_llsn: Llsn) {
        self.llsn.observe(page_llsn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redo::RedoOp;
    use pmp_common::{GlobalTrxId, PageId, StorageLatencyConfig, TableId};

    fn wal() -> Wal {
        wal_with_window(0)
    }

    fn wal_with_window(window_us: u64) -> Wal {
        Wal::new(
            Arc::new(LogStream::new(StorageLatencyConfig::disabled())),
            window_us,
        )
    }

    fn commit_rec() -> RedoRecord {
        RedoRecord {
            llsn: Llsn::ZERO,
            page: PageId::NULL,
            table: TableId(0),
            op: RedoOp::Commit {
                trx: GlobalTrxId::NONE,
                cts: pmp_common::Cts(1),
            },
        }
    }

    fn remove_rec(llsn: Llsn, key: u128) -> RedoRecord {
        RedoRecord {
            llsn,
            page: PageId(1),
            table: TableId(1),
            op: RedoOp::RemoveRow { key },
        }
    }

    #[test]
    fn log_atomic_returns_end_lsn() {
        let w = wal();
        let end1 = w.log_atomic(|_| vec![commit_rec()]);
        let end2 = w.log_atomic(|_| vec![commit_rec()]);
        assert!(end2 > end1);
        assert_eq!(w.stream().end_lsn(), end2);
    }

    #[test]
    fn force_is_batched() {
        let w = wal();
        let end = w.log_atomic(|_| vec![commit_rec()]);
        w.force(end);
        let syncs = w.stream().sync_count();
        w.force(end); // already durable → no new fsync
        assert_eq!(w.stream().sync_count(), syncs);
    }

    #[test]
    fn records_decode_back_in_order() {
        let w = wal();
        w.log_atomic(|c| vec![remove_rec(c.next(), 1), remove_rec(c.next(), 2)]);
        w.log_atomic(|c| vec![remove_rec(c.next(), 3)]);
        let end = w.stream().end_lsn();
        w.force(end);

        let chunk = w.stream().read_chunk(Lsn::ZERO, usize::MAX);
        let mut pos = 0;
        let mut llsns = Vec::new();
        while let Some((rec, used)) = RedoRecord::decode_from(&chunk.data[pos..]).unwrap() {
            llsns.push(rec.llsn);
            pos += used;
        }
        assert_eq!(llsns, vec![Llsn(1), Llsn(2), Llsn(3)]);
    }

    #[test]
    fn concurrent_groups_keep_llsn_monotone_in_stream() {
        use std::thread;
        let w = Arc::new(wal());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let w = Arc::clone(&w);
                thread::spawn(move || {
                    for _ in 0..200 {
                        w.log_atomic(|c| vec![remove_rec(c.next(), 0), remove_rec(c.next(), 1)]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        w.force(w.stream().end_lsn());
        let chunk = w.stream().read_chunk(Lsn::ZERO, usize::MAX);
        let mut pos = 0;
        let mut last = Llsn::ZERO;
        let mut count = 0;
        while let Some((rec, used)) = RedoRecord::decode_from(&chunk.data[pos..]).unwrap() {
            assert!(
                rec.llsn > last,
                "stream order must match LLSN order (invariant 1)"
            );
            last = rec.llsn;
            pos += used;
            count += 1;
        }
        assert_eq!(count, 4 * 200 * 2);
    }

    #[test]
    fn empty_windows_disable_the_wait() {
        // A lone committer pays the collect window only until the adaptive
        // streak trips, then every further force skips it.
        let w = wal_with_window(100);
        for _ in 0..10 {
            let end = w.log_atomic(|_| vec![commit_rec()]);
            w.force(end);
        }
        let g = w.group_stats();
        assert_eq!(g.windows_waited.get(), EMPTY_WINDOW_LIMIT);
        assert_eq!(g.empty_windows.get(), EMPTY_WINDOW_LIMIT);
        assert_eq!(g.batches.get(), 10, "every lone force still fsyncs");
        assert_eq!(g.riders.get(), 0);
        assert_eq!(w.stream().sync_count(), 10);
    }

    #[test]
    fn window_folds_concurrent_committer_into_leader_fsync() {
        use std::thread;
        let w = Arc::new(wal_with_window(20_000)); // generous: 20ms
        let end1 = w.log_atomic(|_| vec![commit_rec()]);
        let leader = {
            let w = Arc::clone(&w);
            thread::spawn(move || w.force(end1))
        };
        // Wait until the leader is inside its collect window, then arrive.
        while w.group_stats().windows_waited.get() == 0 {
            thread::yield_now();
        }
        let end2 = w.log_atomic(|_| vec![commit_rec()]);
        let achieved = w.force(end2);
        assert!(leader.join().unwrap() >= end1);
        assert!(achieved >= end2, "follower covered by the leader's batch");
        assert_eq!(w.stream().sync_count(), 1, "one fsync for both commits");
        assert_eq!(w.group_stats().batches.get(), 1);
        assert_eq!(w.group_stats().riders.get(), 1);
        assert_eq!(
            w.group_stats().empty_windows.get(),
            0,
            "an occupied window must not count toward the adaptive streak"
        );
    }

    #[test]
    fn riders_rearm_a_disabled_window() {
        use std::thread;
        let w = Arc::new(wal_with_window(100));
        // Trip the adaptive streak with lone commits.
        for _ in 0..5 {
            let end = w.log_atomic(|_| vec![commit_rec()]);
            w.force(end);
        }
        assert_eq!(w.group_stats().windows_waited.get(), EMPTY_WINDOW_LIMIT);
        // A burst of concurrent committers produces riders, re-arming the
        // window for the next lull.
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let w = Arc::clone(&w);
                thread::spawn(move || {
                    for _ in 0..50 {
                        let end = w.log_atomic(|_| vec![commit_rec()]);
                        w.force(end);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        if w.group_stats().riders.get() == 0 {
            // Scheduling never overlapped two committers — nothing to
            // assert about re-arming.
            return;
        }
        if w.empty_streak.load(Ordering::Relaxed) >= EMPTY_WINDOW_LIMIT {
            // lint: allow(relaxed-atomic): adaptive group-commit heuristic; a stale read costs one extra empty window
            // The burst's serialized tail re-tripped the streak with lone
            // commits *after* the last rider (common on one CPU): the
            // window is legitimately disabled again, so there is nothing
            // to assert about the next commit.
            return;
        }
        let waited_before = w.group_stats().windows_waited.get();
        let end = w.log_atomic(|_| vec![commit_rec()]);
        w.force(end);
        assert!(
            w.group_stats().windows_waited.get() > waited_before,
            "a rider must reset the empty streak and re-enable the window"
        );
    }

    #[test]
    fn group_force_amortizes_fsyncs_under_concurrency() {
        use std::thread;
        let w = Arc::new(wal_with_window(100));
        let committers = 8;
        let per = 50;
        let handles: Vec<_> = (0..committers)
            .map(|_| {
                let w = Arc::clone(&w);
                thread::spawn(move || {
                    for _ in 0..per {
                        let end = w.log_atomic(|_| vec![commit_rec()]);
                        assert!(w.force(end) >= end);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = committers * per;
        assert!(
            w.stream().sync_count() <= total,
            "never more fsyncs than forces"
        );
        assert_eq!(
            w.stream().sync_count(),
            w.group_stats().batches.get(),
            "every fsync on this stream is a led batch"
        );
    }

    #[test]
    fn force_async_leads_inline_when_uncontended() {
        use std::sync::atomic::AtomicBool;
        let w = wal();
        let end = w.log_atomic(|_| vec![commit_rec()]);
        let fired = Arc::new(AtomicBool::new(false));
        let f = Arc::clone(&fired);
        match w.force_async(
            end,
            Box::new(move |_| {
                f.store(true, Ordering::SeqCst);
            }),
        ) {
            ForceOutcome::Durable(achieved) => assert!(achieved >= end),
            ForceOutcome::Pending => panic!("no leader was active"),
        }
        assert!(
            fired.load(Ordering::SeqCst),
            "the inline lead fires the caller's own callback (self-wake)"
        );
        assert_eq!(w.stream().sync_count(), 1);
        // Already durable: pure fast path, callback dropped unfired.
        match w.force_async(end, Box::new(|_| panic!("must not fire"))) {
            ForceOutcome::Durable(achieved) => assert!(achieved >= end),
            ForceOutcome::Pending => panic!("already durable"),
        }
        assert_eq!(w.stream().sync_count(), 1, "no extra fsync when covered");
    }

    #[test]
    fn force_async_behind_leader_is_fired_by_the_leader() {
        use std::sync::mpsc;
        use std::thread;
        let w = Arc::new(wal_with_window(50_000)); // hold the leader in its window
        let end1 = w.log_atomic(|_| vec![commit_rec()]);
        let leader = {
            let w = Arc::clone(&w);
            thread::spawn(move || w.force(end1))
        };
        while w.group_stats().windows_waited.get() == 0 {
            thread::yield_now();
        }
        // Leader is mid-window holding the sync mutex: an async committer
        // must go Pending and be fired by the leader's batch.
        let end2 = w.log_atomic(|_| vec![commit_rec()]);
        let (tx, rx) = mpsc::channel::<Lsn>();
        match w.force_async(
            end2,
            Box::new(move |achieved| {
                let _ = tx.send(achieved);
            }),
        ) {
            ForceOutcome::Pending => {
                let achieved = rx
                    .recv_timeout(std::time::Duration::from_secs(10))
                    .expect("leader must fire the pending callback");
                assert!(achieved >= end2, "the group sync covers the late target");
            }
            // The leader finished its window before we probed the mutex —
            // scheduling race, the inline path is exercised elsewhere.
            ForceOutcome::Durable(achieved) => assert!(achieved >= end2),
        }
        assert!(leader.join().unwrap() >= end1);
    }

    #[test]
    fn drain_pending_on_crash_fires_with_truncated_watermark() {
        use std::sync::mpsc;
        let w = wal();
        let end = w.log_atomic(|_| vec![commit_rec()]);
        // Simulate a committer that registered and parked (no leader runs).
        let (tx, rx) = mpsc::channel::<Lsn>();
        w.pending_cbs.lock().push(PendingForce {
            id: 999,
            target: end,
            cb: Box::new(move |achieved| {
                let _ = tx.send(achieved);
            }),
        });
        w.stream().crash();
        w.drain_pending_on_crash();
        let achieved = rx.try_recv().expect("drain fires synchronously");
        assert!(
            achieved < end,
            "the truncated watermark can never satisfy the lost record"
        );
        assert!(w.pending_cbs.lock().is_empty());
    }

    fn framed_wal() -> Wal {
        Wal::new_with_compression(
            Arc::new(LogStream::new(StorageLatencyConfig::disabled())),
            0,
            CompressionConfig::lz4(),
        )
    }

    #[test]
    fn framed_groups_compress_and_roundtrip_through_gather_read() {
        let w = framed_wal();
        assert!(w.framed());
        for batch in 0..10u64 {
            w.log_atomic(|c| {
                (0..8)
                    .map(|k| remove_rec(c.next(), (batch * 8 + k) as u128))
                    .collect()
            });
        }
        let end = w.stream().end_lsn();
        assert!(w.force(end) >= end, "force target is the reservation end");
        assert!(
            w.stream().physical_byte_count() < w.stream().logical_byte_count(),
            "repetitive groups must compress: {} physical vs {} logical",
            w.stream().physical_byte_count(),
            w.stream().logical_byte_count()
        );
        // Recovery-style read: gather across the dead tails, then decode
        // frame-by-frame and records within each frame.
        let chunk = w.stream().read_gather_uncharged(Lsn::ZERO, usize::MAX);
        let codec = Codec::new(pmp_common::Compression::Lz4Like);
        let mut pos = 0;
        let mut llsns = Vec::new();
        while let Some((raw, used)) = LogFrame::decode(&codec, &chunk.data[pos..]).unwrap() {
            let mut rpos = 0;
            while let Some((rec, rused)) = RedoRecord::decode_from(&raw[rpos..]).unwrap() {
                llsns.push(rec.llsn);
                rpos += rused;
            }
            assert_eq!(rpos, raw.len(), "frames hold whole records");
            pos += used;
        }
        assert_eq!(pos, chunk.data.len());
        assert_eq!(llsns.len(), 80);
        assert!(
            llsns.windows(2).all(|w| w[0] < w[1]),
            "LLSN order preserved"
        );
    }

    #[test]
    fn framed_concurrent_groups_keep_llsn_monotone() {
        use std::thread;
        let w = Arc::new(framed_wal());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let w = Arc::clone(&w);
                thread::spawn(move || {
                    for _ in 0..100 {
                        let end = w
                            .log_atomic(|c| vec![remove_rec(c.next(), 0), remove_rec(c.next(), 1)]);
                        assert!(w.force(end) >= end);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let chunk = w.stream().read_gather_uncharged(Lsn::ZERO, usize::MAX);
        let codec = Codec::new(pmp_common::Compression::Lz4Like);
        let mut pos = 0;
        let mut last = Llsn::ZERO;
        let mut count = 0;
        while let Some((raw, used)) = LogFrame::decode(&codec, &chunk.data[pos..]).unwrap() {
            let mut rpos = 0;
            while let Some((rec, rused)) = RedoRecord::decode_from(&raw[rpos..]).unwrap() {
                assert!(rec.llsn > last, "stream order must match LLSN order");
                last = rec.llsn;
                rpos += rused;
                count += 1;
            }
            pos += used;
        }
        assert_eq!(count, 4 * 100 * 2);
    }

    #[test]
    fn observe_feeds_clock() {
        let w = wal();
        w.observe_llsn(Llsn(41));
        let end = w.log_atomic(|c| vec![remove_rec(c.next(), 9)]);
        w.force(end);
        let chunk = w.stream().read_chunk(Lsn::ZERO, usize::MAX);
        let (rec, _) = RedoRecord::decode_from(&chunk.data).unwrap().unwrap();
        assert_eq!(rec.llsn, Llsn(42));
    }
}
