//! The multi-node B-link tree over PLocked pages.
//!
//! Traversal never holds one page's PLock while acquiring another's (no
//! coupling): each page carries a high fence key and a right-sibling link,
//! so a traverser that raced a split simply moves right. That discipline is
//! what keeps the cross-node locking deadlock-free: PLocks are only ever
//! held while *waiting* in one direction (child → parent during splits),
//! and descents never hold-and-wait at all.
//!
//! Splits are bottom-up, one atomic mini-transaction per level:
//!
//! 1. split the full page under its X PLock (one atomic redo group with
//!    both page images), force the log, and register the new right sibling
//!    in the DBP *before* it can become reachable from another node;
//! 2. insert the separator into the parent level in a separate
//!    mini-transaction, splitting full ancestors the same way (recursion).
//!
//! Root splits grow the tree *in place*: the root page id never changes, so
//! the catalog root pointer is immutable and concurrent traversers are
//! unaffected.
//!
//! Physical consistency across nodes is exactly the paper's PLock story
//! (§4.3.1): S to read a page, X to modify it, structure changes hold their
//! X PLocks for the duration of the mini-transaction.

use pmp_common::sync::sched_point;
use pmp_common::{GlobalTrxId, PageId, PmpError, Result, TableId};
use pmp_pmfs::PLockMode;

use crate::node::NodeEngine;
use crate::page::{LeafPage, Page, PageKind};
use crate::redo::{RedoOp, RedoRecord};
use crate::row::IndexKey;

/// What a modify closure decided, given the write-latched leaf.
pub enum ModifyVerdict<R> {
    /// Mutations were applied to the page; log `page_ops` for it (each op
    /// gets its own LLSN) preceded by `pre_records` (non-page records such
    /// as `UndoWrite`) in the same atomic group.
    Apply {
        result: R,
        page_ops: Vec<RedoOp>,
        pre_records: Vec<RedoRecord>,
    },
    /// Nothing was changed (pure read outcome, e.g. "key not found").
    NoChange(R),
    /// The closure wants to insert but the leaf is full. The closure must
    /// not have mutated anything.
    NeedSplit,
    /// The row is write-locked by an active transaction; the caller must
    /// wait and retry outside all latches. No mutations happened.
    Conflict(GlobalTrxId),
}

/// Outcome of [`leaf_modify`].
pub enum WriteResult<R> {
    Done(R),
    Conflict(GlobalTrxId),
}

/// Read the leaf covering `key` under its S PLock and read latch.
pub fn leaf_read<R>(
    engine: &NodeEngine,
    root: PageId,
    key: IndexKey,
    f: impl FnOnce(&Page) -> R,
) -> Result<R> {
    let mut current = root;
    loop {
        let _guard = engine.plock(current, PLockMode::S)?;
        let frame = engine.frame(current)?;
        let page = frame.page.read();
        if current == root {
            engine.set_root_hint(root, page.is_leaf());
        }
        if !page.covers(key) {
            current = page.next;
            continue;
        }
        match &page.kind {
            PageKind::Internal(node) => {
                current = node.child_for(key);
            }
            PageKind::Leaf(_) => return Ok(f(&page)),
        }
    }
}

/// Modify the leaf covering `key` under its X PLock and write latch. The
/// closure may run several times (after splits or right-moves); it must be
/// side-effect-free on every run that does not return `Apply`.
pub fn leaf_modify<R>(
    engine: &NodeEngine,
    table: TableId,
    root: PageId,
    key: IndexKey,
    f: &mut dyn FnMut(&mut Page) -> ModifyVerdict<R>,
) -> Result<WriteResult<R>> {
    let mut current = root;
    let mut expect_leaf = engine.root_hint(root);
    loop {
        enum Step<R> {
            Goto { page: PageId, expect_leaf: bool },
            RetryWithX,
            Split,
            Out(WriteResult<R>),
        }
        let step = {
            let mode = if expect_leaf {
                PLockMode::X
            } else {
                PLockMode::S
            };
            let _guard = engine.plock(current, mode)?;
            let frame = engine.frame(current)?;

            // Route under the read latch first.
            let routed = {
                let page = frame.page.read();
                if current == root {
                    engine.set_root_hint(root, page.is_leaf());
                }
                if !page.covers(key) {
                    Some(Step::Goto {
                        page: page.next,
                        expect_leaf: page.is_leaf(),
                    })
                } else {
                    match &page.kind {
                        PageKind::Internal(node) => Some(Step::Goto {
                            page: node.child_for(key),
                            expect_leaf: page.level == 1,
                        }),
                        PageKind::Leaf(_) if mode != PLockMode::X => Some(Step::RetryWithX),
                        PageKind::Leaf(_) => None,
                    }
                }
            };
            match routed {
                Some(step) => step,
                None => {
                    // We hold the X PLock; take the write latch and
                    // re-validate (a same-node thread may have split it).
                    let mut page = frame.page.write();
                    if !page.covers(key) {
                        Step::Goto {
                            page: page.next,
                            expect_leaf: true,
                        }
                    } else if let PageKind::Internal(node) = &page.kind {
                        // Root growth converted this page in place between
                        // our read and write latches (it still covers the
                        // key, so the `covers` re-check alone misses it):
                        // route down instead of modifying an internal page.
                        Step::Goto {
                            page: node.child_for(key),
                            expect_leaf: page.level == 1,
                        }
                    } else {
                        match f(&mut page) {
                            ModifyVerdict::Apply {
                                result,
                                page_ops,
                                pre_records,
                            } => {
                                let page_id = page.id;
                                let page_ref = &mut *page;
                                let end = engine.wal.log_atomic(|clock| {
                                    let mut recs = pre_records;
                                    for op in page_ops {
                                        let llsn = clock.next();
                                        page_ref.llsn = llsn;
                                        recs.push(RedoRecord {
                                            llsn,
                                            page: page_id,
                                            table,
                                            op,
                                        });
                                    }
                                    recs
                                });
                                frame.mark_dirty(end, page.llsn);
                                Step::Out(WriteResult::Done(result))
                            }
                            ModifyVerdict::NoChange(r) => Step::Out(WriteResult::Done(r)),
                            ModifyVerdict::Conflict(holder) => {
                                Step::Out(WriteResult::Conflict(holder))
                            }
                            ModifyVerdict::NeedSplit => Step::Split,
                        }
                    }
                }
            }
            // `_guard`, `frame` and all latches drop here.
        };
        match step {
            Step::Goto {
                page,
                expect_leaf: e,
            } => {
                current = page;
                expect_leaf = e;
            }
            Step::RetryWithX => {
                expect_leaf = true;
            }
            Step::Split => {
                split_for(engine, table, root, key)?;
                current = root;
                expect_leaf = engine.root_hint(root);
            }
            Step::Out(out) => return Ok(out),
        }
    }
}

/// Scan leaves starting at the one covering `from`, following sibling
/// links. `f` is called per leaf under S PLock + read latch; return `false`
/// to stop.
pub fn scan_from(
    engine: &NodeEngine,
    root: PageId,
    from: IndexKey,
    mut f: impl FnMut(&Page) -> bool,
) -> Result<()> {
    let mut current = root;
    let mut at_leaf_level = false;
    while !current.is_null() {
        let _guard = engine.plock(current, PLockMode::S)?;
        let frame = engine.frame(current)?;
        let page = frame.page.read();
        if !at_leaf_level {
            // Still descending to the leaf that covers `from`.
            if !page.covers(from) {
                current = page.next;
                continue;
            }
            match &page.kind {
                PageKind::Internal(node) => {
                    current = node.child_for(from);
                    continue;
                }
                PageKind::Leaf(_) => at_leaf_level = true,
            }
        }
        // Warm the sibling through the io ring while the visitor works on
        // this leaf: by the time the scan advances, the storage latency has
        // (partly) elapsed off-thread. Cancelled if the visitor stops the
        // scan before reaching the sibling.
        let pending = engine.prefetch(page.next);
        if !f(&page) {
            if let Some(token) = pending {
                engine.cancel_prefetch(token);
            }
            return Ok(());
        }
        current = page.next;
    }
    Ok(())
}

/// Ancestor stack collected on the way down: `(level, page_id)`.
type Ancestors = Vec<(u16, PageId)>;

/// Split whatever full page currently blocks an insert of `key`, then
/// return so the caller re-descends. The caller must not hold any PLock
/// guards on the affected path.
fn split_for(engine: &NodeEngine, table: TableId, root: PageId, key: IndexKey) -> Result<()> {
    let (leaf_id, ancestors) = descend_collect(engine, root, key)?;
    split_page(engine, table, root, leaf_id, &ancestors, key)
}

/// S-lock descent that records the internal ancestor at each level.
fn descend_collect(
    engine: &NodeEngine,
    root: PageId,
    key: IndexKey,
) -> Result<(PageId, Ancestors)> {
    let mut ancestors = Ancestors::new();
    let mut current = root;
    loop {
        let _guard = engine.plock(current, PLockMode::S)?;
        let frame = engine.frame(current)?;
        let page = frame.page.read();
        if !page.covers(key) {
            current = page.next;
            continue;
        }
        match &page.kind {
            PageKind::Internal(node) => {
                ancestors.push((page.level, current));
                current = node.child_for(key);
            }
            PageKind::Leaf(_) => return Ok((current, ancestors)),
        }
    }
}

/// Split `page_id` if (still) full and covering `key_hint`. Handles the
/// root-in-place growth case and recursively ensures the parent has room
/// for the new separator.
fn split_page(
    engine: &NodeEngine,
    table: TableId,
    root: PageId,
    page_id: PageId,
    ancestors: &Ancestors,
    key_hint: IndexKey,
) -> Result<()> {
    let split_out = {
        let _guard = engine.plock(page_id, PLockMode::X)?;
        let frame = engine.frame(page_id)?;
        let mut page = frame.page.write();
        if !page.covers(key_hint) || !engine.is_full(&page) {
            return Ok(()); // raced: someone else already split
        }
        // Cheaper than splitting: purge tombstones whose delete every view
        // already sees (space reclamation; delete-heavy workloads would
        // otherwise grow the tree with dead rows forever).
        if page.is_leaf() && purge_tombstones(engine, table, &frame, &mut page) {
            return Ok(());
        }
        if page_id == root {
            return root_split(engine, table, &frame, &mut page);
        }

        let new_id = engine.shared.storage.page_store().allocate_page_id();
        let (separator, mut right) = carve_right(&mut page, new_id);

        let page_ref = &mut *page;
        let right_ref = &mut right;
        let end = engine.wal.log_atomic(|clock| {
            page_ref.llsn = clock.next();
            right_ref.llsn = clock.next();
            vec![
                RedoRecord {
                    llsn: page_ref.llsn,
                    page: page_id,
                    table,
                    op: RedoOp::PageImage(page_ref.clone()),
                },
                RedoRecord {
                    llsn: right_ref.llsn,
                    page: new_id,
                    table,
                    op: RedoOp::PageImage(right_ref.clone()),
                },
            ]
        });
        frame.mark_dirty(end, page.llsn);
        // WAL rule: the new page's image must be durable before the page
        // is pushed anywhere (install_new_page registers it in the DBP).
        if engine.wal.force(end) < end {
            return Err(PmpError::NodeUnavailable { node: engine.node });
        }
        let parent_level = page.level + 1;
        // Install the new right sibling BEFORE the left page's write latch
        // drops. Same-node transactions share the node's PLock, so the
        // latch is all that hides left's updated `next` pointer: releasing
        // it first opens a window where a reader chases `next` to a page
        // that is in neither the LBP, the DBP, nor storage and aborts with
        // "missing from shared storage". (Root splits already install the
        // children under the root's latch for the same reason.)
        engine.install_new_page(right);
        sched_point("btree.split.install-window");
        drop(page);
        (separator, new_id, parent_level)
        // `_guard` drops: the split mini-transaction is complete.
    };

    let (separator, new_id, parent_level) = split_out;
    insert_separator(
        engine,
        table,
        root,
        ancestors,
        parent_level,
        separator,
        new_id,
    )
}

/// Physically remove every tombstone in a full leaf whose delete is
/// visible to all current views (committed CTS below the broadcast global
/// minimum view, §4.1): no snapshot can ever need the row or its version
/// chain again. Returns whether any row was reclaimed (logged as one page
/// image).
fn purge_tombstones(
    engine: &NodeEngine,
    table: TableId,
    frame: &std::sync::Arc<crate::lbp::Frame>,
    page: &mut Page,
) -> bool {
    let min_view = engine.tit.load_global_min_view();
    if min_view.0 == 0 {
        return false; // no consolidated view broadcast yet
    }
    let mut purged: Vec<crate::undo::UndoPtr> = Vec::new();
    {
        let leaf = page.as_leaf_mut();
        leaf.rows.retain(|row| {
            if !row.header.deleted {
                return true;
            }
            let cts = if !row.header.cts.is_init() {
                row.header.cts
            } else if row.header.trx.is_none() {
                pmp_common::CSN_MIN
            } else {
                engine.trx_cts(row.header.trx)
            };
            if cts != pmp_common::CSN_MAX && !cts.is_init() && cts < min_view {
                if !row.header.undo.is_null() {
                    purged.push(row.header.undo);
                }
                false // reclaim
            } else {
                true
            }
        });
    }
    if purged.is_empty() {
        return false;
    }
    let page_id = page.id;
    let page_ref = &mut *page;
    let end = engine.wal.log_atomic(|clock| {
        page_ref.llsn = clock.next();
        vec![RedoRecord {
            llsn: page_ref.llsn,
            page: page_id,
            table,
            op: RedoOp::PageImage(page_ref.clone()),
        }]
    });
    frame.mark_dirty(end, page.llsn);
    true
}

/// Grow the tree in place: the old root's contents move into two fresh
/// children and the root becomes a (taller) internal page.
fn root_split(
    engine: &NodeEngine,
    table: TableId,
    frame: &std::sync::Arc<crate::lbp::Frame>,
    page: &mut Page,
) -> Result<()> {
    let store = engine.shared.storage.page_store();
    let left_id = store.allocate_page_id();
    let right_id = store.allocate_page_id();

    // Carve the upper half into `right`; the lower half becomes `left`.
    let (separator, mut right) = carve_right(page, right_id);
    let mut left = Page {
        id: left_id,
        llsn: page.llsn,
        next: right_id,
        high: Some(separator),
        level: page.level,
        kind: page.kind.clone(),
    };
    // The root spans the whole level: its children are fenced between
    // themselves but the level's extremes stay open.
    right.next = PageId::NULL;
    right.high = None;

    let child_level = page.level;
    let root_id = page.id;
    *page = Page::new_internal(
        root_id,
        child_level + 1,
        vec![separator],
        vec![left_id, right_id],
    );

    let left_ref = &mut left;
    let right_ref = &mut right;
    let page_ref = &mut *page;
    let end = engine.wal.log_atomic(|clock| {
        left_ref.llsn = clock.next();
        right_ref.llsn = clock.next();
        page_ref.llsn = clock.next();
        vec![
            RedoRecord {
                llsn: left_ref.llsn,
                page: left_id,
                table,
                op: RedoOp::PageImage(left_ref.clone()),
            },
            RedoRecord {
                llsn: right_ref.llsn,
                page: right_id,
                table,
                op: RedoOp::PageImage(right_ref.clone()),
            },
            RedoRecord {
                llsn: page_ref.llsn,
                page: root_id,
                table,
                op: RedoOp::PageImage(page_ref.clone()),
            },
        ]
    });
    frame.mark_dirty(end, page.llsn);
    // WAL rule, as in the non-root split: no DBP install without durable
    // images.
    if engine.wal.force(end) < end {
        return Err(PmpError::NodeUnavailable { node: engine.node });
    }
    engine.install_new_page(left);
    engine.install_new_page(right);
    engine.set_root_hint(root_id, false);
    Ok(())
}

/// Split the upper half of `page` into a new page `new_id`, B-link style:
/// the new right sibling inherits the old fence and sibling link, the left
/// half gets `separator` as its fence and the new page as its sibling.
fn carve_right(page: &mut Page, new_id: PageId) -> (IndexKey, Page) {
    let (separator, right_kind) = match &mut page.kind {
        PageKind::Leaf(leaf) => {
            let (sep, upper) = leaf.split_upper();
            (sep, PageKind::Leaf(LeafPage { rows: upper }))
        }
        PageKind::Internal(node) => {
            let (sep, upper) = node.split_upper();
            (sep, PageKind::Internal(upper))
        }
    };
    let right = Page {
        id: new_id,
        llsn: page.llsn,
        next: page.next,
        high: page.high,
        level: page.level,
        kind: right_kind,
    };
    page.next = new_id;
    page.high = Some(separator);
    (separator, right)
}

/// Insert `separator → new_child` into the internal level `level`,
/// splitting full ancestors as needed.
fn insert_separator(
    engine: &NodeEngine,
    table: TableId,
    root: PageId,
    ancestors: &Ancestors,
    level: u16,
    separator: IndexKey,
    new_child: PageId,
) -> Result<()> {
    let mut current = ancestors
        .iter()
        .find(|(l, _)| *l == level)
        .map(|(_, id)| *id)
        .unwrap_or(root);
    loop {
        enum SepAction {
            Goto(PageId),
            SplitSelf,
        }
        let action = {
            let _guard = engine.plock(current, PLockMode::X)?;
            let frame = engine.frame(current)?;
            let mut page = frame.page.write();
            if page.level > level {
                SepAction::Goto(page.as_internal().child_for(separator))
            } else if page.level < level {
                return Err(PmpError::internal(format!(
                    "separator insert landed below target level ({} < {level})",
                    page.level
                )));
            } else if !page.covers(separator) {
                SepAction::Goto(page.next)
            } else if page.as_internal().keys.binary_search(&separator).is_ok() {
                return Ok(()); // idempotent re-run: already inserted
            } else if engine.is_full(&page) {
                SepAction::SplitSelf
            } else {
                let idx = page.as_internal().child_index_for(separator);
                page.as_internal_mut()
                    .insert_split(idx, separator, new_child);
                let page_id = page.id;
                let page_ref = &mut *page;
                let end = engine.wal.log_atomic(|clock| {
                    page_ref.llsn = clock.next();
                    vec![RedoRecord {
                        llsn: page_ref.llsn,
                        page: page_id,
                        table,
                        op: RedoOp::PageImage(page_ref.clone()),
                    }]
                });
                frame.mark_dirty(end, page.llsn);
                return Ok(());
            }
            // Guards drop before we act.
        };
        match action {
            SepAction::Goto(next) => current = next,
            SepAction::SplitSelf => {
                split_page(engine, table, root, current, ancestors, separator)?;
                // Retry at the same position; coverage checks route us.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{LeafPage, PageKind};
    use crate::row::{Row, RowValue};
    use pmp_common::Llsn;

    fn leaf_with_keys(id: u64, keys: &[u128]) -> Page {
        let mut page = Page::new_leaf(PageId(id));
        for &k in keys {
            page.as_leaf_mut()
                .insert(Row::bootstrap(k, RowValue::new(vec![k as u64])));
        }
        page
    }

    #[test]
    fn carve_right_links_siblings_and_fences() {
        let mut left = leaf_with_keys(1, &[10, 20, 30, 40]);
        left.next = PageId(99);
        left.high = Some(1000);
        left.llsn = Llsn(5);

        let (sep, right) = carve_right(&mut left, PageId(2));
        assert_eq!(sep, 30);
        // Left half: fenced at the separator, linked to the new page.
        assert_eq!(left.high, Some(30));
        assert_eq!(left.next, PageId(2));
        assert_eq!(left.as_leaf().rows.len(), 2);
        // Right half: inherits the old fence and sibling.
        assert_eq!(right.high, Some(1000));
        assert_eq!(right.next, PageId(99));
        assert_eq!(right.level, left.level);
        assert!(right.as_leaf().rows.iter().all(|r| r.key >= sep));
        assert!(left.as_leaf().rows.iter().all(|r| r.key < sep));
    }

    #[test]
    fn carve_right_internal_promotes_separator() {
        let mut node = Page::new_internal(
            PageId(1),
            1,
            vec![10, 20, 30, 40],
            vec![PageId(11), PageId(12), PageId(13), PageId(14), PageId(15)],
        );
        let (sep, right) = carve_right(&mut node, PageId(2));
        assert_eq!(sep, 30);
        // The promoted separator appears in NEITHER half (it moves up),
        // but routing across the fence stays exhaustive.
        assert!(!node.as_internal().keys.contains(&30));
        assert!(!right.as_internal().keys.contains(&30));
        assert_eq!(node.as_internal().child_for(25), PageId(13));
        assert_eq!(right.as_internal().child_for(35), PageId(14));
        assert_eq!(node.high, Some(30));
        assert_eq!(right.high, None);
    }

    #[test]
    fn modify_verdict_shapes_are_side_effect_free_markers() {
        // NeedSplit / Conflict are pure routing decisions: constructing and
        // matching them must not require any page context.
        let v: ModifyVerdict<()> = ModifyVerdict::NeedSplit;
        assert!(matches!(v, ModifyVerdict::NeedSplit));
        let v: ModifyVerdict<()> = ModifyVerdict::Conflict(pmp_common::GlobalTrxId::NONE);
        assert!(matches!(v, ModifyVerdict::Conflict(_)));
        // Leaf pages carved from kind clones stay structurally equal.
        let leaf = LeafPage::default();
        assert!(matches!(PageKind::Leaf(leaf), PageKind::Leaf(_)));
    }
}
