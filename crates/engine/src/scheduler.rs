//! Parkable transaction scheduler (the async engine core).
//!
//! Transactions become state machines that **park** on their wait classes —
//! page-load completion (`pmp-io` CQE), PLock grant, CTS lease refill and
//! `wal_force` group commit — releasing their worker thread instead of
//! blocking on a condvar, and are re-queued on wake. A handful of workers
//! therefore multiplexes hundreds of open transactions, which is what lets
//! a 2-worker node keep the fabric and the storage ring full (the
//! disaggregated-memory argument of arXiv 2207.03027 §1: with sub-100µs
//! remote waits the CPU must overlap many in-flight txns per core).
//!
//! ## The park/wake protocol (why wakes can't miss)
//!
//! Each task owns a persistent [`Parker`] with a three-state atomic:
//! `RUNNING → PARKED → (wake) → RUNNING`, plus `NOTIFIED` as a sticky
//! "wake arrived" marker. The ordering discipline is publish-then-check on
//! both sides:
//!
//! * The **worker**, when a step returns [`StepResult::Parked`], first
//!   publishes the step into the parker's slot, *then* CAS-es
//!   `RUNNING → PARKED`. If the CAS fails a wake landed mid-step
//!   (`NOTIFIED`); the worker reclaims the step and re-queues it at once.
//! * A **waker** swaps the state to `NOTIFIED`. Only if it observed
//!   `PARKED` does it take the step from the slot and enqueue it — and
//!   `PARKED` is only observable after the step was published. A waker that
//!   observed `RUNNING` did not touch the slot, but its `NOTIFIED` makes
//!   the worker's CAS fail, so the wake still lands. A waker that observed
//!   `NOTIFIED` is absorbed (someone else already owns the re-queue).
//!
//! Spurious wakes are therefore harmless by construction: a step re-runs,
//! re-checks its wait condition and re-parks. Park points are written to be
//! idempotent (statement retry, staged commit), which the rest of the
//! engine relies on.
//!
//! ## Stopped schedulers
//!
//! After [`Scheduler::stop`] (node shutdown or crash), wakes run the step
//! *inline* on the waking thread, and [`Parker::can_park`] turns false so
//! every park point falls back to its bounded blocking path. Combined with
//! stop firing all pending deadline timers, every outstanding future
//! resolves — usually with `NodeUnavailable` from the dead node.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
// lint: allow(raw-instant): deadline timers are scheduler infrastructure, not modelled latency
use std::time::Instant;

use pmp_common::sync::{sched_point, LockClass, TrackedCondvar, TrackedMutex};
use pmp_common::{Counter, Gauge, PageId, PmpError};

/// Run-queue of ready continuations.
const SCHED_QUEUE: LockClass = LockClass::new("sched.queue");
/// Per-task parker slot (step + error + wait bookkeeping).
const SCHED_PARKER: LockClass = LockClass::new("sched.parker");
/// Deadline-timer heap.
const SCHED_TIMER: LockClass = LockClass::new("sched.timer");
/// Helper pool for unbounded blocking calls (PLock negotiation RPCs).
const SCHED_BLOCKING: LockClass = LockClass::new("sched.blocking");

const RUNNING: u8 = 0;
const PARKED: u8 = 1;
const NOTIFIED: u8 = 2;

/// Upper bound on lazily-spawned helper threads for [`Scheduler::spawn_blocking`].
const BLOCKING_POOL_CAP: usize = 8;

/// Outcome of one step of a task's state machine.
pub enum StepResult {
    /// The task is finished; the scheduler drops it.
    Done,
    /// The task registered a waker with some wait source and yields its
    /// worker. It runs again (from the top of the step) after the next
    /// [`Parker::wake`].
    Parked,
}

/// One resumable unit of work. Steps are re-entrant: every run starts from
/// the top and must re-check whatever it last waited for.
pub type Step = Box<dyn FnMut() -> StepResult + Send>;

thread_local! {
    static CURRENT_PARKER: RefCell<Option<Arc<Parker>>> = const { RefCell::new(None) };
}

/// The parker of the task currently running on this thread, if any. Park
/// points deep in the engine use this to discover they are on a scheduler
/// worker and may register a waker instead of blocking.
pub fn current_parker() -> Option<Arc<Parker>> {
    CURRENT_PARKER.with(|c| c.borrow().clone())
}

/// Like [`current_parker`], but only when the owning scheduler is still
/// running — on a stopped scheduler park points must use their blocking
/// fallback so inline re-runs terminate.
pub fn async_parker() -> Option<Arc<Parker>> {
    current_parker().filter(|p| p.can_park())
}

fn set_current(parker: Option<Arc<Parker>>) -> Option<Arc<Parker>> {
    CURRENT_PARKER.with(|c| c.replace(parker))
}

/// Run `f` with this thread's parker hidden, so every park point inside
/// takes its bounded blocking fallback. Rollback runs under this: undo
/// replay is not safe to interleave with a statement re-run, so it must
/// complete synchronously even on a scheduler worker.
pub(crate) fn with_parking_disabled<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<Parker>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_current(self.0.take());
        }
    }
    let _restore = Restore(set_current(None));
    f()
}

/// Scheduler counters, surfaced through the typed cluster stats.
#[derive(Debug, Default)]
pub struct SchedStats {
    /// Steps that yielded their worker (one per park, not per task).
    pub parks: Counter,
    /// Wakes delivered (including absorbed/spurious ones).
    pub wakes: Counter,
    /// Steps run inline on a waker's thread because the scheduler stopped.
    pub inline_runs: Counter,
    /// Deadline timers that fired.
    pub timer_fires: Counter,
    /// Jobs routed through the blocking helper pool.
    pub blocking_jobs: Counter,
    /// Live tasks (spawned and not yet `Done`); the HWM is the
    /// open-continuations ceiling the acceptance test asserts on.
    pub tasks: Gauge,
}

struct ReadyTask {
    parker: Arc<Parker>,
    step: Step,
}

#[derive(Default)]
struct RunQueue {
    tasks: VecDeque<ReadyTask>,
}

struct TimerEntry {
    at: Instant,
    seq: u64,
    parker: Arc<Parker>,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[derive(Default)]
struct TimerState {
    heap: BinaryHeap<Reverse<TimerEntry>>,
    seq: u64,
}

type Job = Box<dyn FnOnce() + Send>;

#[derive(Default)]
struct BlockingPool {
    queue: VecDeque<Job>,
    threads: usize,
    idle: usize,
}

struct SchedInner {
    queue: TrackedMutex<RunQueue>,
    cv: TrackedCondvar,
    timers: TrackedMutex<TimerState>,
    timer_cv: TrackedCondvar,
    blocking: TrackedMutex<BlockingPool>,
    blocking_cv: TrackedCondvar,
    stats: SchedStats,
    stopped: AtomicBool,
}

/// Per-task wake handle; see the module docs for the state protocol.
pub struct Parker {
    state: AtomicU8,
    slot: TrackedMutex<ParkerSlot>,
    sched: Weak<SchedInner>,
}

#[derive(Default)]
struct ParkerSlot {
    step: Option<Step>,
    /// A wait source that failed delivers its error here before waking; the
    /// session actor turns it into the statement's outcome.
    error: Option<PmpError>,
    /// PLock wait bookkeeping: the page waited on and the absolute deadline,
    /// persisted across re-runs so repeated park/wake cycles still time out.
    plock_wait: Option<(PageId, Instant)>,
}

impl std::fmt::Debug for Parker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Parker")
            .field("state", &self.state.load(Ordering::Relaxed)) // lint: allow(relaxed-atomic): Debug snapshot only
            .finish_non_exhaustive()
    }
}

impl Parker {
    /// Deliver a wake. Safe to call from any thread, any number of times;
    /// extra wakes are absorbed, and a wake that races the parking worker
    /// is never lost (publish-then-check, see module docs).
    pub fn wake(self: &Arc<Self>) {
        let prev = self.state.swap(NOTIFIED, Ordering::AcqRel);
        sched_point("sched.wake.swap-window");
        if prev != PARKED {
            return;
        }
        // Only the single waker that observed PARKED reaches here, and
        // PARKED is set strictly after the step was published to the slot.
        let step = self.slot.lock().step.take();
        if let Some(step) = step {
            SchedInner::enqueue(&self.sched, Arc::clone(self), step);
        }
    }

    /// Whether the owning scheduler still accepts parks. False after stop
    /// (or if the scheduler was dropped): park points must fall back to
    /// their bounded blocking paths.
    pub fn can_park(&self) -> bool {
        self.sched
            .upgrade()
            .map(|s| !s.stopped.load(Ordering::Acquire))
            .unwrap_or(false)
    }

    /// Record a failure for the parked step; pair with [`Parker::wake`].
    pub fn set_error(&self, e: PmpError) {
        self.slot.lock().error = Some(e);
    }

    pub fn take_error(&self) -> Option<PmpError> {
        self.slot.lock().error.take()
    }

    pub fn plock_wait(&self) -> Option<(PageId, Instant)> {
        self.slot.lock().plock_wait
    }

    pub fn set_plock_wait(&self, page: PageId, deadline: Instant) {
        self.slot.lock().plock_wait = Some((page, deadline));
    }

    pub fn clear_plock_wait(&self) {
        self.slot.lock().plock_wait = None;
    }

    /// Arm a deadline: the task is woken (possibly spuriously) at `at`.
    /// Every park that is not otherwise guaranteed a wake arms one of
    /// these, which is also what makes `Scheduler::stop` hang-free — stop
    /// fires all pending timers.
    pub fn park_deadline(self: &Arc<Self>, at: Instant) {
        if let Some(s) = self.sched.upgrade() {
            if !s.stopped.load(Ordering::Acquire) {
                sched_point("sched.park-deadline.stop-window");
                let mut t = s.timers.lock();
                // Re-check under the heap lock: `stop` may have flagged,
                // woken the timer thread, and joined it between the load
                // above and this acquisition. An entry pushed now would
                // land in a heap nobody drains and the backstop would
                // never fire (modelled by crates/model/tests/parker_timer.rs).
                // `stop` also drains the heap after the join, so an entry
                // pushed before its drain is still fired.
                if !s.stopped.load(Ordering::Acquire) {
                    t.seq += 1;
                    let seq = t.seq;
                    t.heap.push(Reverse(TimerEntry {
                        at,
                        seq,
                        parker: Arc::clone(self),
                    }));
                    drop(t);
                    s.timer_cv.notify_all();
                    return;
                }
            }
        }
        // Stopped or gone: wake immediately. The re-run sees `can_park()
        // == false` and completes on the blocking path, so this cannot
        // loop.
        self.wake();
    }

    /// Route a bounded-but-slow blocking call (a negotiation RPC) to the
    /// helper pool so it does not occupy a scheduler worker. Falls back to
    /// running the job on the calling thread when the scheduler stopped.
    pub fn spawn_blocking(&self, job: Job) {
        match self.sched.upgrade() {
            Some(s) => s.spawn_blocking(job),
            None => job(),
        }
    }
}

impl SchedInner {
    /// Hand a ready task to the workers — or, when the scheduler has
    /// stopped, run it inline on the calling thread so its future still
    /// resolves.
    fn enqueue(sched: &Weak<SchedInner>, parker: Arc<Parker>, step: Step) {
        if let Some(s) = sched.upgrade() {
            s.stats.wakes.inc();
            if !s.stopped.load(Ordering::Acquire) {
                let mut q = s.queue.lock();
                if !s.stopped.load(Ordering::Acquire) {
                    q.tasks.push_back(ReadyTask { parker, step });
                    drop(q);
                    s.cv.notify_one();
                    return;
                }
            }
            s.stats.inline_runs.inc();
            if Self::run_task_on_current_thread(&parker, step) {
                s.stats.tasks.dec();
            }
        } else {
            // Scheduler dropped entirely; nothing left to account against.
            let _ = Self::run_task_on_current_thread(&parker, step);
        }
    }

    /// Run one task on the current thread using the same park protocol as a
    /// worker. Returns true when the task finished (`Done`).
    fn run_task_on_current_thread(parker: &Arc<Parker>, mut step: Step) -> bool {
        loop {
            parker.state.store(RUNNING, Ordering::Release);
            let prev = set_current(Some(Arc::clone(parker)));
            let res = step();
            set_current(prev);
            match res {
                StepResult::Done => return true,
                StepResult::Parked => {
                    parker.slot.lock().step = Some(step);
                    match parker.state.compare_exchange(
                        RUNNING,
                        PARKED,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => return false,
                        Err(_) => {
                            // A wake raced in while the step ran: reclaim
                            // and run again.
                            match parker.slot.lock().step.take() {
                                Some(s) => step = s,
                                None => return false,
                            }
                        }
                    }
                }
            }
        }
    }

    fn worker_loop(self: &Arc<Self>) {
        loop {
            let task = {
                let mut q = self.queue.lock();
                loop {
                    if let Some(t) = q.tasks.pop_front() {
                        break Some(t);
                    }
                    if self.stopped.load(Ordering::Acquire) {
                        break None;
                    }
                    // lint: allow(blocking-wait-in-scheduler): idle workers park on the run-queue condvar; no task is occupying this thread
                    self.cv.wait(&mut q);
                }
            };
            let Some(ReadyTask { parker, mut step }) = task else {
                return;
            };
            parker.state.store(RUNNING, Ordering::Release);
            let prev = set_current(Some(Arc::clone(&parker)));
            let res = step();
            set_current(prev);
            match res {
                StepResult::Done => {
                    self.stats.tasks.dec();
                }
                StepResult::Parked => {
                    self.stats.parks.inc();
                    parker.slot.lock().step = Some(step);
                    sched_point("sched.park.publish-window");
                    if parker
                        .state
                        .compare_exchange(RUNNING, PARKED, Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                    {
                        // NOTIFIED landed mid-step; the waker did not touch
                        // the slot (it never saw PARKED), so the step is
                        // still ours to re-queue.
                        let step = parker.slot.lock().step.take();
                        if let Some(step) = step {
                            Self::enqueue(&Arc::downgrade(self), parker, step);
                        }
                    }
                }
            }
        }
    }

    fn timer_loop(self: &Arc<Self>) {
        loop {
            let mut due: Vec<Arc<Parker>> = Vec::new();
            {
                let mut t = self.timers.lock();
                loop {
                    if self.stopped.load(Ordering::Acquire) {
                        // Fire everything outstanding so no park outlives
                        // the scheduler.
                        due.extend(t.heap.drain().map(|Reverse(e)| e.parker));
                        break;
                    }
                    // lint: allow(raw-instant): timer infrastructure
                    let now = Instant::now();
                    while t.heap.peek().map(|Reverse(e)| e.at <= now).unwrap_or(false) {
                        let Reverse(e) = t.heap.pop().expect("peeked entry");
                        due.push(e.parker);
                    }
                    if !due.is_empty() {
                        break;
                    }
                    match t.heap.peek().map(|Reverse(e)| e.at) {
                        Some(at) => {
                            // lint: allow(blocking-wait-in-scheduler): the timer thread is infrastructure, not a task worker
                            let _ = self.timer_cv.wait_until(&mut t, at);
                        }
                        // lint: allow(blocking-wait-in-scheduler): idle timer thread
                        None => self.timer_cv.wait(&mut t),
                    }
                }
            }
            let stopping = self.stopped.load(Ordering::Acquire);
            for p in due {
                self.stats.timer_fires.inc();
                p.wake();
            }
            if stopping {
                return;
            }
        }
    }

    fn spawn_blocking(self: &Arc<Self>, job: Job) {
        if self.stopped.load(Ordering::Acquire) {
            job();
            return;
        }
        self.stats.blocking_jobs.inc();
        let spawn_helper = {
            let mut b = self.blocking.lock();
            b.queue.push_back(job);
            let need = b.idle == 0 && b.threads < BLOCKING_POOL_CAP;
            if need {
                b.threads += 1;
            }
            need
        };
        self.blocking_cv.notify_one();
        if spawn_helper {
            let inner = Arc::clone(self);
            // Helper threads are joined by `Scheduler::stop` via the pool
            // bookkeeping; detach the handle.
            std::thread::spawn(move || inner.blocking_loop());
        }
    }

    fn blocking_loop(self: &Arc<Self>) {
        loop {
            let job = {
                let mut b = self.blocking.lock();
                loop {
                    if let Some(j) = b.queue.pop_front() {
                        break Some(j);
                    }
                    if self.stopped.load(Ordering::Acquire) {
                        b.threads -= 1;
                        break None;
                    }
                    b.idle += 1;
                    // lint: allow(blocking-wait-in-scheduler): idle helper threads park on the job condvar
                    self.blocking_cv.wait(&mut b);
                    b.idle -= 1;
                }
            };
            match job {
                Some(j) => j(),
                None => {
                    self.blocking_cv.notify_all();
                    return;
                }
            }
        }
    }
}

/// The per-node scheduler: a small worker pool, a deadline-timer thread and
/// a lazily-grown helper pool for blocking RPCs.
pub struct Scheduler {
    inner: Arc<SchedInner>,
    threads: TrackedMutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("stopped", &self.inner.stopped.load(Ordering::Relaxed)) // lint: allow(relaxed-atomic): Debug snapshot only
            .finish_non_exhaustive()
    }
}

impl Scheduler {
    pub fn new(workers: usize) -> Self {
        let inner = Arc::new(SchedInner {
            queue: TrackedMutex::new(SCHED_QUEUE, RunQueue::default()),
            cv: TrackedCondvar::new(),
            timers: TrackedMutex::new(SCHED_TIMER, TimerState::default()),
            timer_cv: TrackedCondvar::new(),
            blocking: TrackedMutex::new(SCHED_BLOCKING, BlockingPool::default()),
            blocking_cv: TrackedCondvar::new(),
            stats: SchedStats::default(),
            stopped: AtomicBool::new(false),
        });
        let mut threads = Vec::new();
        for _ in 0..workers.max(1) {
            let i = Arc::clone(&inner);
            threads.push(std::thread::spawn(move || i.worker_loop()));
        }
        let i = Arc::clone(&inner);
        threads.push(std::thread::spawn(move || i.timer_loop()));
        Scheduler {
            inner,
            threads: TrackedMutex::new(SCHED_QUEUE, threads),
        }
    }

    pub fn stats(&self) -> &SchedStats {
        &self.inner.stats
    }

    /// Spawn a new task; it runs as soon as a worker is free. The returned
    /// parker is the task's permanent wake handle.
    pub fn spawn(&self, step: Step) -> Arc<Parker> {
        let parker = Arc::new(Parker {
            state: AtomicU8::new(NOTIFIED),
            slot: TrackedMutex::new(SCHED_PARKER, ParkerSlot::default()),
            sched: Arc::downgrade(&self.inner),
        });
        self.inner.stats.tasks.inc();
        SchedInner::enqueue(&Arc::downgrade(&self.inner), Arc::clone(&parker), step);
        parker
    }

    /// Route a blocking job to the helper pool (see [`Parker::spawn_blocking`]).
    pub fn spawn_blocking(&self, job: Job) {
        self.inner.spawn_blocking(job);
    }

    /// Stop the scheduler: workers exit, pending deadline timers fire, and
    /// any task still queued runs inline here (its park points now take
    /// their blocking fallbacks, so it terminates). Idempotent.
    pub fn stop(&self) {
        self.inner.stopped.store(true, Ordering::Release);
        self.inner.cv.notify_all();
        self.inner.timer_cv.notify_all();
        self.inner.blocking_cv.notify_all();
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.threads.lock());
        for h in handles {
            let _ = h.join();
        }
        // Fire deadlines that raced in after the timer thread's final
        // drain: `park_deadline` can pass its pre-lock `stopped` check,
        // lose the CPU across this whole join, and push into the dead
        // heap. Draining here (after the join, under the same lock the
        // push takes) closes that window — the parker's re-run sees
        // `can_park() == false` and completes on the blocking path.
        let straggling_timers: Vec<Arc<Parker>> = {
            let mut t = self.inner.timers.lock();
            t.heap.drain().map(|Reverse(e)| e.parker).collect()
        };
        for p in straggling_timers {
            self.inner.stats.timer_fires.inc();
            p.wake();
        }
        // Wait for lazily-spawned helper threads to finish their (bounded)
        // jobs and exit.
        {
            let mut b = self.inner.blocking.lock();
            while b.threads > 0 {
                // lint: allow(blocking-wait-in-scheduler): stop-path join of helper threads
                self.inner.blocking_cv.wait(&mut b);
            }
        }
        // Drain tasks that were ready but never picked up.
        loop {
            let task = self.inner.queue.lock().tasks.pop_front();
            match task {
                Some(ReadyTask { parker, step }) => {
                    self.inner.stats.inline_runs.inc();
                    if SchedInner::run_task_on_current_thread(&parker, step) {
                        self.inner.stats.tasks.dec();
                    }
                }
                None => break,
            }
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn task_runs_to_done() {
        let sched = Scheduler::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        sched.spawn(Box::new(move || {
            r.fetch_add(1, Ordering::SeqCst);
            StepResult::Done
        }));
        let deadline = Instant::now() + Duration::from_secs(5);
        while ran.load(Ordering::SeqCst) == 0 {
            assert!(Instant::now() < deadline, "task never ran");
            std::thread::yield_now();
        }
        assert_eq!(sched.stats().tasks.get(), 0, "done tasks are dropped");
        assert_eq!(sched.stats().tasks.hwm(), 1);
    }

    #[test]
    fn park_then_wake_reruns_step() {
        let sched = Scheduler::new(1);
        let runs = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&runs);
        let parker = sched.spawn(Box::new(move || {
            if r.fetch_add(1, Ordering::SeqCst) == 0 {
                StepResult::Parked
            } else {
                StepResult::Done
            }
        }));
        let deadline = Instant::now() + Duration::from_secs(5);
        while runs.load(Ordering::SeqCst) < 1 {
            assert!(Instant::now() < deadline);
            std::thread::yield_now();
        }
        // Give the worker a moment to publish the PARKED state, then wake.
        while parker.state.load(Ordering::Acquire) != PARKED {
            assert!(Instant::now() < deadline, "task never parked");
            std::thread::yield_now();
        }
        parker.wake();
        while runs.load(Ordering::SeqCst) < 2 {
            assert!(Instant::now() < deadline, "wake lost");
            std::thread::yield_now();
        }
    }

    #[test]
    fn wake_racing_park_is_not_lost() {
        // Hammer the publish-then-check ordering: a waker fires while the
        // step is still running; the worker's park CAS must fail and the
        // task must run again.
        for _ in 0..200 {
            let sched = Scheduler::new(1);
            let runs = Arc::new(AtomicUsize::new(0));
            let r = Arc::clone(&runs);
            let parker = sched.spawn(Box::new(move || {
                if r.fetch_add(1, Ordering::SeqCst) == 0 {
                    StepResult::Parked
                } else {
                    StepResult::Done
                }
            }));
            // Wake immediately — may land before the first run, mid-run, or
            // after the park. All three must end with the task done.
            parker.wake();
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                let n = runs.load(Ordering::SeqCst);
                if n >= 2 {
                    break;
                }
                if n == 1 && parker.state.load(Ordering::Acquire) == PARKED {
                    // Wake was absorbed pre-first-run (NOTIFIED initial
                    // state); deliver a real one now that it is parked.
                    parker.wake();
                }
                assert!(Instant::now() < deadline, "wake lost in race");
                std::thread::yield_now();
            }
        }
    }

    #[test]
    fn deadline_timer_wakes_parked_task() {
        let sched = Scheduler::new(1);
        let runs = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&runs);
        let parker = sched.spawn(Box::new(move || {
            if r.fetch_add(1, Ordering::SeqCst) == 0 {
                StepResult::Parked
            } else {
                StepResult::Done
            }
        }));
        let deadline = Instant::now() + Duration::from_secs(5);
        while parker.state.load(Ordering::Acquire) != PARKED {
            assert!(Instant::now() < deadline, "task never parked");
            std::thread::yield_now();
        }
        parker.park_deadline(Instant::now() + Duration::from_millis(20));
        while runs.load(Ordering::SeqCst) < 2 {
            assert!(Instant::now() < deadline, "timer never fired");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(sched.stats().timer_fires.get() >= 1);
    }

    #[test]
    fn spawn_blocking_runs_jobs() {
        let sched = Scheduler::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let d = Arc::clone(&done);
            sched.spawn_blocking(Box::new(move || {
                d.fetch_add(1, Ordering::SeqCst);
            }));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while done.load(Ordering::SeqCst) < 16 {
            assert!(Instant::now() < deadline, "blocking jobs stalled");
            std::thread::yield_now();
        }
        sched.stop();
        // After stop, jobs run inline on the caller.
        let d = Arc::clone(&done);
        sched.spawn_blocking(Box::new(move || {
            d.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(done.load(Ordering::SeqCst), 17);
    }

    #[test]
    fn stop_fires_pending_timers_and_runs_queued_tasks_inline() {
        let sched = Scheduler::new(1);
        let runs = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&runs);
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        let parker = sched.spawn(Box::new(move || {
            r.fetch_add(1, Ordering::SeqCst);
            if g.load(Ordering::SeqCst) {
                StepResult::Done
            } else {
                StepResult::Parked
            }
        }));
        let deadline = Instant::now() + Duration::from_secs(5);
        while parker.state.load(Ordering::Acquire) != PARKED {
            assert!(Instant::now() < deadline, "task never parked");
            std::thread::yield_now();
        }
        // Far-future timer: only stop can fire it.
        parker.park_deadline(Instant::now() + Duration::from_secs(3600));
        gate.store(true, Ordering::SeqCst);
        sched.stop();
        assert!(
            runs.load(Ordering::SeqCst) >= 2,
            "stop must fire the pending timer and finish the task inline"
        );
        assert_eq!(sched.stats().tasks.get(), 0);
    }

    #[test]
    fn park_deadline_racing_stop_is_not_lost() {
        // Regression for the stop/park_deadline window: a deadline armed
        // concurrently with `stop` must still fire, even when the push
        // lands after the timer thread's final drain. The deterministic
        // reproduction lives in crates/model/tests/parker_timer.rs; this
        // is the real-clock stress variant.
        for _ in 0..200 {
            let sched = Scheduler::new(1);
            let runs = Arc::new(AtomicUsize::new(0));
            let r = Arc::clone(&runs);
            let gate = Arc::new(AtomicBool::new(false));
            let g = Arc::clone(&gate);
            let parker = sched.spawn(Box::new(move || {
                r.fetch_add(1, Ordering::SeqCst);
                if g.load(Ordering::SeqCst) {
                    StepResult::Done
                } else {
                    StepResult::Parked
                }
            }));
            let deadline = Instant::now() + Duration::from_secs(5);
            while parker.state.load(Ordering::Acquire) != PARKED {
                assert!(Instant::now() < deadline, "task never parked");
                std::thread::yield_now();
            }
            gate.store(true, Ordering::SeqCst);
            let p = Arc::clone(&parker);
            let arm = std::thread::spawn(move || {
                // Far-future deadline: only a stop-side drain can fire it.
                p.park_deadline(Instant::now() + Duration::from_secs(3600));
            });
            sched.stop();
            arm.join().unwrap();
            let deadline = Instant::now() + Duration::from_secs(5);
            while runs.load(Ordering::SeqCst) < 2 {
                assert!(
                    Instant::now() < deadline,
                    "deadline armed during stop never fired; task stranded"
                );
                std::thread::yield_now();
            }
        }
    }

    #[test]
    fn wake_after_done_is_harmless() {
        let sched = Scheduler::new(1);
        let parker = sched.spawn(Box::new(|| StepResult::Done));
        let deadline = Instant::now() + Duration::from_secs(5);
        while sched.stats().tasks.get() != 0 {
            assert!(Instant::now() < deadline);
            std::thread::yield_now();
        }
        parker.wake();
        parker.wake();
    }
}
