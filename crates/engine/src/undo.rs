//! The shared undo record store.
//!
//! Undo records hold prior row versions for MVCC reconstruction and
//! transaction rollback. In PolarDB-MP they live in undo tablespaces that —
//! like everything else — are reachable from every node (a reader on node B
//! routinely reconstructs a version written on node A). We model the undo
//! space as one cluster-shared store in disaggregated memory: appends and
//! same-node reads are local; cross-node reads pay a one-sided fabric read.
//! Durability is *not* provided here — exactly as in §4.4, "undo logs are
//! also protected by its redo logs": the engine emits a redo record for
//! every undo write, and full-cluster recovery rebuilds this store from
//! redo before rolling back in-doubt transactions.
//!
//! Reconstruction walks are the visibility *slow* path: the per-node
//! [version store](crate::version_store) answers lagging snapshots locally
//! first, and every fallback walk back-fills it (see
//! `txn::reconstruct_with_fill`). The `undo-reconstruction` lint rule keeps
//! direct `read` walks confined to `txn.rs`/`undo.rs` so that stays true.
//! Undo pointers are never reused (recovery keeps the allocator ahead),
//! which is what lets the version store key versions by [`UndoPtr`]
//! identity.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pmp_common::sync::{LockClass, TrackedRwLock};
use pmp_common::{Counter, GlobalTrxId, NodeId, TableId};
use pmp_rdma::{Fabric, Locality};

/// Undo-store shards; the remote-read charge is paid after the shard guard
/// drops.
const UNDO_SHARD: LockClass = LockClass::new("engine.undo.shard");

use crate::row::{IndexKey, RowHeader, RowValue};

/// Reference to an undo record: `(owning node, per-node sequence)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct UndoPtr {
    pub node: NodeId,
    pub seq: u64,
}

impl UndoPtr {
    pub const NULL: UndoPtr = UndoPtr {
        node: NodeId(u16::MAX),
        seq: 0,
    };

    pub fn is_null(&self) -> bool {
        *self == Self::NULL
    }
}

/// The prior state of a row captured before an update.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UndoRecord {
    /// Transaction that created this record (the *new* version's writer).
    pub trx: GlobalTrxId,
    pub table: TableId,
    pub key: IndexKey,
    /// The row image being replaced; `None` when the operation was an
    /// insert of a previously absent key (rollback removes the row).
    pub prev: Option<(RowHeader, RowValue)>,
    /// Next record of the same transaction (for rollback traversal).
    pub trx_prev: UndoPtr,
}

const SHARDS: usize = 64;

/// Cluster-shared undo store.
#[derive(Debug)]
pub struct UndoStore {
    shards: Vec<TrackedRwLock<HashMap<UndoPtr, Arc<UndoRecord>>>>,
    next_seq: Vec<AtomicU64>,
    pub appends: Counter,
    pub remote_reads: Counter,
}

/// Maximum number of nodes the per-node sequence table is sized for.
const MAX_NODES: usize = 64;

/// Approximate wire size of an undo record, for fabric charging.
fn record_bytes(rec: &UndoRecord) -> usize {
    48 + rec
        .prev
        .as_ref()
        .map(|(_, v)| 40 + v.encoded_len())
        .unwrap_or(0)
}

impl UndoStore {
    pub fn new() -> Self {
        UndoStore {
            shards: (0..SHARDS)
                .map(|_| TrackedRwLock::new(UNDO_SHARD, HashMap::new()))
                .collect(),
            next_seq: (0..MAX_NODES).map(|_| AtomicU64::new(1)).collect(),
            appends: Counter::new(),
            remote_reads: Counter::new(),
        }
    }

    fn shard(&self, ptr: UndoPtr) -> &TrackedRwLock<HashMap<UndoPtr, Arc<UndoRecord>>> {
        &self.shards[(ptr.seq as usize ^ ptr.node.as_usize()) & (SHARDS - 1)]
    }

    /// Append a record on behalf of `node` (a local write into the node's
    /// undo segment). Returns the new pointer.
    pub fn append(&self, node: NodeId, record: UndoRecord) -> UndoPtr {
        self.appends.inc();
        let seq = self.next_seq[node.as_usize()].fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed-atomic): monotonic per-node undo sequence allocator
        let ptr = UndoPtr { node, seq };
        self.shard(ptr).write().insert(ptr, Arc::new(record));
        ptr
    }

    /// Re-insert a record at a known pointer (recovery rebuild path).
    pub fn restore(&self, ptr: UndoPtr, record: UndoRecord) {
        let seqs = &self.next_seq[ptr.node.as_usize()];
        // Keep the allocator ahead of everything restored.
        seqs.fetch_max(ptr.seq + 1, Ordering::Relaxed); // lint: allow(relaxed-atomic): monotonic allocator bump; fetch_max keeps it ahead regardless of order
        self.shard(ptr).write().insert(ptr, Arc::new(record));
    }

    /// Read a record. `reader` determines fabric locality: reading another
    /// node's undo segment pays a one-sided RDMA read.
    pub fn read(&self, fabric: &Fabric, reader: NodeId, ptr: UndoPtr) -> Option<Arc<UndoRecord>> {
        if ptr.is_null() {
            return None;
        }
        let rec = self.shard(ptr).read().get(&ptr).cloned();
        if ptr.node != reader {
            self.remote_reads.inc();
            if let Some(rec) = &rec {
                fabric.bulk_read(record_bytes(rec), Locality::Remote);
            } else {
                fabric.bulk_read(8, Locality::Remote);
            }
        }
        rec
    }

    /// Drop a set of records (purge after the owning transaction's slot is
    /// recycled — every surviving snapshot can already see the new version).
    pub fn purge(&self, ptrs: &[UndoPtr]) {
        for &ptr in ptrs {
            self.shard(ptr).write().remove(&ptr);
        }
    }

    /// Simulate disaggregated-memory loss (full-cluster failure): all
    /// records vanish; recovery must rebuild them from redo.
    pub fn clear(&self) {
        for s in &self.shards {
            s.write().clear();
        }
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for UndoStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_common::{Cts, LatencyConfig, SlotId, TrxId};

    fn gid(node: u16, trx: u64) -> GlobalTrxId {
        GlobalTrxId {
            node: NodeId(node),
            trx: TrxId(trx),
            slot: SlotId(0),
            version: 1,
        }
    }

    fn rec(node: u16, key: IndexKey, prev: Option<(RowHeader, RowValue)>) -> UndoRecord {
        UndoRecord {
            trx: gid(node, 1),
            table: TableId(1),
            key,
            prev,
            trx_prev: UndoPtr::NULL,
        }
    }

    fn header() -> RowHeader {
        RowHeader {
            trx: gid(0, 9),
            cts: Cts(5),
            undo: UndoPtr::NULL,
            deleted: false,
        }
    }

    #[test]
    fn append_read_roundtrip() {
        let fabric = Fabric::new(LatencyConfig::disabled());
        let store = UndoStore::new();
        let ptr = store.append(
            NodeId(0),
            rec(0, 7, Some((header(), RowValue::new(vec![1])))),
        );
        let got = store.read(&fabric, NodeId(0), ptr).unwrap();
        assert_eq!(got.key, 7);
        assert_eq!(store.remote_reads.get(), 0, "same-node read is local");

        store.read(&fabric, NodeId(1), ptr).unwrap();
        assert_eq!(store.remote_reads.get(), 1);
    }

    #[test]
    fn null_pointer_reads_nothing() {
        let fabric = Fabric::new(LatencyConfig::disabled());
        let store = UndoStore::new();
        assert!(store.read(&fabric, NodeId(0), UndoPtr::NULL).is_none());
    }

    #[test]
    fn pointers_are_per_node_sequences() {
        let store = UndoStore::new();
        let a = store.append(NodeId(0), rec(0, 1, None));
        let b = store.append(NodeId(1), rec(1, 2, None));
        let c = store.append(NodeId(0), rec(0, 3, None));
        assert_eq!(a.node, NodeId(0));
        assert_eq!(b.node, NodeId(1));
        assert_eq!(a.seq, 1);
        assert_eq!(b.seq, 1);
        assert_eq!(c.seq, 2);
    }

    #[test]
    fn purge_removes_records() {
        let fabric = Fabric::new(LatencyConfig::disabled());
        let store = UndoStore::new();
        let a = store.append(NodeId(0), rec(0, 1, None));
        let b = store.append(NodeId(0), rec(0, 2, None));
        store.purge(&[a]);
        assert!(store.read(&fabric, NodeId(0), a).is_none());
        assert!(store.read(&fabric, NodeId(0), b).is_some());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn restore_keeps_allocator_ahead() {
        let store = UndoStore::new();
        store.restore(
            UndoPtr {
                node: NodeId(0),
                seq: 100,
            },
            rec(0, 1, None),
        );
        let next = store.append(NodeId(0), rec(0, 2, None));
        assert!(next.seq > 100, "allocator must never reuse restored seqs");
    }

    #[test]
    fn clear_models_memory_loss() {
        let store = UndoStore::new();
        store.append(NodeId(0), rec(0, 1, None));
        store.clear();
        assert!(store.is_empty());
    }
}
