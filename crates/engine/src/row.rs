//! Rows and their MVCC headers.
//!
//! PolarDB-MP "adds two extra metadata fields for each row to store the
//! g_trx_id and CTS" (§4.1); the g_trx_id additionally *is* the row lock
//! word ("The transaction ID in the row functions as a lock indicator",
//! §4.3.2). On top of the paper's two fields we keep the undo pointer that
//! any MVCC engine needs to reconstruct prior versions, and a delete mark
//! (tombstone) since the engine never merges pages in place.

use pmp_common::{Cts, GlobalTrxId, NodeId, CSN_MIN};

use crate::undo::UndoPtr;

/// B-tree key. Primary tables use the low 64 bits; global secondary indexes
/// pack `(secondary_value, primary_key)` into the full 128 bits so that
/// non-unique secondary values stay distinct.
pub type IndexKey = u128;

/// Compose a secondary-index key from a column value and the primary key.
pub fn index_key(secondary: u64, pk: u64) -> IndexKey {
    ((secondary as u128) << 64) | pk as u128
}

/// Split a secondary-index key back into `(secondary_value, primary_key)`.
pub fn split_index_key(key: IndexKey) -> (u64, u64) {
    ((key >> 64) as u64, key as u64)
}

/// The per-row metadata fields of §4.1/§4.3.2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RowHeader {
    /// Last writer / current lock holder. `GlobalTrxId::NONE` for bootstrap
    /// rows that predate any transaction.
    pub trx: GlobalTrxId,
    /// Commit timestamp, backfilled at commit when the row is still
    /// buffered; `CSN_INIT` otherwise (readers then consult the TIT).
    pub cts: Cts,
    /// Head of this row's version chain in the undo store.
    pub undo: UndoPtr,
    /// Delete mark (tombstone).
    pub deleted: bool,
}

impl RowHeader {
    /// Header for rows created by the initial bulk load, visible to every
    /// transaction without any TIT traffic.
    pub fn bootstrap() -> Self {
        RowHeader {
            trx: GlobalTrxId::NONE,
            cts: CSN_MIN,
            undo: UndoPtr::NULL,
            deleted: false,
        }
    }
}

/// Row payload: fixed-width u64 columns. Workload schemas (SysBench, TPC-C,
/// TATP) all fit this shape; per-table byte padding models the real row
/// width for transfer accounting.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RowValue(pub Vec<u64>);

impl RowValue {
    pub fn new(cols: Vec<u64>) -> Self {
        RowValue(cols)
    }

    pub fn col(&self, i: usize) -> u64 {
        self.0[i]
    }

    pub fn encoded_len(&self) -> usize {
        8 * self.0.len()
    }
}

/// A row as stored in a leaf page.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Row {
    pub key: IndexKey,
    pub header: RowHeader,
    pub value: RowValue,
}

impl Row {
    pub fn bootstrap(key: IndexKey, value: RowValue) -> Self {
        Row {
            key,
            header: RowHeader::bootstrap(),
            value,
        }
    }

    /// Is the row currently write-locked as far as the lock *word* goes?
    /// (Liveness of the named transaction must still be checked via the
    /// TIT; a committed transaction's id left in place means "unlocked".)
    pub fn lock_word(&self) -> GlobalTrxId {
        self.header.trx
    }
}

/// Convenience for tests and bootstrap code: a lock word owned by nobody.
pub fn unlocked() -> GlobalTrxId {
    GlobalTrxId::NONE
}

/// Helper used in several visibility fast paths: does `gid` belong to
/// `node`?
pub fn is_local(gid: GlobalTrxId, node: NodeId) -> bool {
    gid.node == node
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_key_roundtrip() {
        let k = index_key(0xdead_beef, 0x1234_5678_9abc_def0);
        assert_eq!(split_index_key(k), (0xdead_beef, 0x1234_5678_9abc_def0));
    }

    #[test]
    fn index_keys_order_by_secondary_then_pk() {
        assert!(index_key(1, 999) < index_key(2, 0));
        assert!(index_key(5, 1) < index_key(5, 2));
    }

    #[test]
    fn bootstrap_rows_are_visible_and_unlocked() {
        let r = Row::bootstrap(1, RowValue::new(vec![42]));
        assert!(r.header.trx.is_none());
        assert_eq!(r.header.cts, CSN_MIN);
        assert!(!r.header.deleted);
        assert!(r.header.undo.is_null());
    }

    #[test]
    fn row_value_accessors() {
        let v = RowValue::new(vec![1, 2, 3]);
        assert_eq!(v.col(1), 2);
        assert_eq!(v.encoded_len(), 24);
    }
}
