//! The cross-region standby cluster, §3.
//!
//! "PolarDB-MP also incorporates a standby node to ensure high availability
//! across regions. Changes occurring in the primary cluster are
//! synchronized to the standby cluster using the write-ahead log."
//!
//! The standby continuously consumes every primary node's redo stream
//! (log shipping), merging the streams with the same chunked `LLSN_bound`
//! algorithm recovery uses, and maintains its own region-local page set.
//! It serves **committed-only reads** (a standby has no access to the
//! primary region's TIT, so visibility is decided by commit records seen in
//! the shipped log), and it can be **promoted**: in-doubt transactions are
//! rolled back from the shipped undo records and the page set is written
//! into a fresh region's shared storage, from which new primaries boot.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use pmp_common::sync::{LockClass, TrackedMutex};
use pmp_common::{ClusterConfig, GlobalTrxId, Llsn, NodeId, PageId, PmpError, Result};

/// The standby's whole apply state is one mutex by design: `catch_up` is a
/// single-consumer shipping loop, and the log reads it performs *are* its
/// work, not incidental I/O under a hot lock. The mutex exists only so
/// `stats()`/`read()`/`promote()` see consistent snapshots between rounds.
const STANDBY_STATE: LockClass = LockClass::charge_exempt(
    "engine.standby.state",
    "single-consumer apply loop reads shipped log chunks as its own critical work; the lock only fences stats/read/promote snapshots between rounds",
);

use crate::page::{Page, PageKind};
use crate::recovery::StreamCursor;
use crate::redo::{LogDecoder, RedoOp, RedoRecord};
use crate::row::{IndexKey, RowValue};
use crate::shared::{Shared, TableMeta};
use crate::undo::{UndoPtr, UndoRecord};

/// Standby replication progress.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct StandbyStats {
    pub records_applied: u64,
    pub commits_seen: u64,
    pub apply_rounds: u64,
    /// Highest commit timestamp shipped so far (the promotion TSO floor).
    pub max_cts: u64,
}

struct StandbyState {
    pages: HashMap<PageId, Page>,
    cursors: Vec<StreamCursor>,
    committed: HashSet<GlobalTrxId>,
    rolled_back: HashSet<GlobalTrxId>,
    undo: HashMap<UndoPtr, UndoRecord>,
    undo_of: HashMap<GlobalTrxId, Vec<UndoPtr>>,
    seen: HashSet<GlobalTrxId>,
    stats: StandbyStats,
}

/// A standby region attached to a primary cluster's log streams.
pub struct Standby {
    source: Arc<Shared>,
    chunk_bytes: usize,
    state: TrackedMutex<StandbyState>,
}

impl std::fmt::Debug for Standby {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Standby").finish_non_exhaustive()
    }
}

impl Standby {
    /// Attach a standby to the primary cluster, shipping the logs of
    /// `nodes`. (In production the shipping crosses regions; here the
    /// standby reads the same durable streams the primaries write.)
    pub fn attach(source: &Arc<Shared>, nodes: &[NodeId]) -> Self {
        // The standby decodes whatever byte format the primaries ship.
        let dec = LogDecoder::new(source.config.compression);
        let cursors = nodes
            .iter()
            .map(|&node| StreamCursor::new(node, source.storage.redo_stream(node), dec))
            .collect();
        Standby {
            source: Arc::clone(source),
            chunk_bytes: source.config.engine.recovery_chunk_bytes,
            state: TrackedMutex::new(
                STANDBY_STATE,
                StandbyState {
                    pages: HashMap::new(),
                    cursors,
                    committed: HashSet::new(),
                    rolled_back: HashSet::new(),
                    undo: HashMap::new(),
                    undo_of: HashMap::new(),
                    seen: HashSet::new(),
                    stats: StandbyStats::default(),
                },
            ),
        }
    }

    /// Consume whatever durable log is available and apply it. Returns the
    /// number of records applied this round. Call periodically (a
    /// production standby would be driven by the shipping pipeline).
    pub fn catch_up(&self) -> Result<u64> {
        let mut st = self.state.lock();
        st.stats.apply_rounds += 1;
        let before = st.stats.records_applied;
        loop {
            // Refill cursors; note non-page records immediately.
            let st = &mut *st;
            for c in st.cursors.iter_mut() {
                // A live stream is never "exhausted" — clear the flag so the
                // next round re-polls from the current position.
                c.exhausted = false;
                let (committed, rolled_back, undo, undo_of, seen, stats) = (
                    &mut st.committed,
                    &mut st.rolled_back,
                    &mut st.undo,
                    &mut st.undo_of,
                    &mut st.seen,
                    &mut st.stats,
                );
                c.refill(self.chunk_bytes, |rec| {
                    stats.records_applied += 1;
                    if let Some(gid) = rec.row_op_trx() {
                        if !gid.is_none() {
                            seen.insert(gid);
                        }
                    }
                    match &rec.op {
                        RedoOp::Commit { trx, cts } => {
                            committed.insert(*trx);
                            stats.commits_seen += 1;
                            stats.max_cts = stats.max_cts.max(cts.0);
                        }
                        RedoOp::Rollback { trx } => {
                            rolled_back.insert(*trx);
                        }
                        RedoOp::UndoWrite { ptr, record } => {
                            undo.insert(*ptr, record.clone());
                            undo_of.entry(record.trx).or_default().push(*ptr);
                            seen.insert(record.trx);
                        }
                        _ => {}
                    }
                })?;
            }
            if st.cursors.iter().all(|c| c.pending.is_empty()) {
                break;
            }
            // LLSN_bound over the live streams: a stream with buffered
            // records bounds at its last buffered LLSN (more may arrive),
            // so we only apply what is safely ordered.
            let bound = st
                .cursors
                .iter()
                .filter_map(|c| c.pending.back().map(|r| r.llsn))
                .min()
                .unwrap_or(Llsn(u64::MAX));
            let mut batch: Vec<RedoRecord> = Vec::new();
            for c in st.cursors.iter_mut() {
                while let Some(front) = c.pending.front() {
                    if front.llsn <= bound {
                        batch.push(c.pending.pop_front().expect("front exists"));
                    } else {
                        break;
                    }
                }
            }
            if batch.is_empty() {
                break; // heads all exceed the bound; wait for more log
            }
            batch.sort_by_key(|r| r.llsn);
            for rec in &batch {
                self.apply_page_record(&mut st.pages, rec)?;
            }
        }
        Ok(st.stats.records_applied - before)
    }

    fn apply_page_record(&self, pages: &mut HashMap<PageId, Page>, rec: &RedoRecord) -> Result<()> {
        if !pages.contains_key(&rec.page) {
            if let RedoOp::PageImage(image) = &rec.op {
                let mut image = image.clone();
                image.llsn = rec.llsn;
                pages.insert(rec.page, image);
                return Ok(());
            }
            // Base image predates the attach point (e.g. a table root
            // written straight to storage): fetch it from the source
            // region's storage — the basebackup-on-demand every physical
            // standby performs.
            let base = self
                .source
                .storage
                .page_store()
                // lint: allow(direct-page-read): cross-region basebackup fetch outside any node's io ring
                .read(rec.page)?
                .ok_or_else(|| {
                    PmpError::internal(format!("standby missing base image for {}", rec.page))
                })?;
            pages.insert(rec.page, (*base).clone());
        }
        let page = pages.get_mut(&rec.page).expect("just ensured");
        rec.apply_to(page);
        Ok(())
    }

    pub fn stats(&self) -> StandbyStats {
        self.state.lock().stats.clone()
    }

    /// Committed-only read of `key` in `table` at the standby's current
    /// replication point. Uncommitted (not-yet-commit-record-shipped) row
    /// versions are skipped via the shipped undo records.
    pub fn read(&self, table: &TableMeta, key: u64) -> Result<Option<RowValue>> {
        let st = self.state.lock();
        let key = key as IndexKey;
        // Descend the B-link structure in the standby page set.
        let mut current = table.root;
        let leaf = loop {
            let Some(page) = st.pages.get(&current) else {
                // Nothing replicated for this subtree yet.
                return Ok(None);
            };
            if !page.covers(key) {
                current = page.next;
                continue;
            }
            match &page.kind {
                PageKind::Internal(node) => current = node.child_for(key),
                PageKind::Leaf(_) => break page,
            }
        };
        let Some(row) = leaf.as_leaf().get(key) else {
            return Ok(None);
        };
        // Walk versions until one whose transaction's commit record has
        // been shipped (bootstrap rows have no transaction).
        let mut header = row.header;
        let mut value = row.value.clone();
        loop {
            let committed = header.trx.is_none()
                || st.committed.contains(&header.trx)
                || (!st.seen.contains(&header.trx) && !header.cts.is_init());
            if committed && !st.rolled_back.contains(&header.trx) {
                return Ok((!header.deleted).then_some(value));
            }
            let Some(rec) = st.undo.get(&header.undo) else {
                return Ok(None);
            };
            let Some((h, v)) = &rec.prev else {
                return Ok(None);
            };
            header = *h;
            value = v.clone();
        }
    }

    /// Promote the standby into a fresh region: roll back in-doubt
    /// transactions from the shipped undo, materialize the page set into a
    /// new `Shared` (new storage, new PMFS), copy the catalog, and return
    /// it ready for `NodeEngine::start`. The source cluster is untouched.
    pub fn promote(&self, config: ClusterConfig) -> Result<Arc<Shared>> {
        let mut st = self.state.lock();
        // Roll back in-doubt transactions directly on the page set.
        let st = &mut *st;
        let in_doubt: Vec<GlobalTrxId> = st
            .seen
            .iter()
            .filter(|g| !st.committed.contains(g) && !st.rolled_back.contains(g))
            .copied()
            .collect();
        for gid in in_doubt {
            let ptrs = st.undo_of.get(&gid).cloned().unwrap_or_default();
            for ptr in ptrs.iter().rev() {
                let Some(rec) = st.undo.get(ptr).cloned() else {
                    continue;
                };
                let meta = self.source.catalog.get(rec.table)?;
                Self::offline_undo(&mut st.pages, meta.root, gid, &rec)?;
            }
        }

        let fresh = Shared::new(config);
        // The new region's clock must never reissue a shipped timestamp:
        // every replicated row's CTS has to stay visible to new snapshots.
        fresh
            .pmfs
            .txn
            .tso()
            .advance_to(&fresh.repl, pmp_common::Cts(st.stats.max_cts));
        for (id, page) in &st.pages {
            fresh.storage.write_page(*id, Arc::new(page.clone()))?;
        }
        // Copy catalog metadata (same table ids and root page ids).
        for meta in self.source.catalog.all() {
            fresh.catalog.register((*meta).clone());
            fresh.catalog.bump_next_id(meta.id);
        }
        // Keep the new region's page allocator clear of replicated ids.
        let max_page = st.pages.keys().map(|p| p.0).max().unwrap_or(0);
        fresh.storage.page_store().reserve_page_ids(max_page + 1);
        Ok(fresh)
    }

    fn offline_undo(
        pages: &mut HashMap<PageId, Page>,
        root: PageId,
        gid: GlobalTrxId,
        rec: &UndoRecord,
    ) -> Result<()> {
        let mut current = root;
        let leaf_id = loop {
            let Some(page) = pages.get(&current) else {
                return Ok(()); // never replicated ⇒ nothing to undo
            };
            if !page.covers(rec.key) {
                current = page.next;
                continue;
            }
            match &page.kind {
                PageKind::Internal(node) => current = node.child_for(rec.key),
                PageKind::Leaf(_) => break current,
            }
        };
        let page = pages.get_mut(&leaf_id).expect("leaf just resolved");
        let leaf = page.as_leaf_mut();
        if let Ok(i) = leaf.search(rec.key) {
            if leaf.rows[i].header.trx == gid {
                match &rec.prev {
                    Some((header, value)) => {
                        leaf.rows[i].header = *header;
                        leaf.rows[i].value = value.clone();
                    }
                    None => {
                        leaf.rows.remove(i);
                    }
                }
            }
        }
        Ok(())
    }
}
