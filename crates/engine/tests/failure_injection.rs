//! Failure-injection tests: crashes with mixed transaction outcomes,
//! repeated recovery, storage outages, frozen locks, and resource
//! exhaustion.

use std::sync::Arc;
use std::time::Duration;

use pmp_common::{ClusterConfig, NodeId, PmpError};
use pmp_engine::recovery::recover_node;
use pmp_engine::row::RowValue;
use pmp_engine::shared::Shared;
use pmp_engine::NodeEngine;

fn cluster_with(config: ClusterConfig) -> (Arc<Shared>, Vec<Arc<NodeEngine>>) {
    let shared = Shared::new(config);
    let engines = (0..config.nodes)
        .map(|i| NodeEngine::start(Arc::clone(&shared), NodeId(i as u16)))
        .collect();
    (shared, engines)
}

fn cluster(nodes: usize) -> (Arc<Shared>, Vec<Arc<NodeEngine>>) {
    cluster_with(ClusterConfig::test(nodes))
}

fn v(x: u64) -> RowValue {
    RowValue::new(vec![x])
}

#[test]
fn crash_with_mixed_outcomes_recovers_exact_state() {
    let (shared, engines) = cluster(1);
    let t = shared.create_table("t", 1, &[]).unwrap().id;

    // Committed.
    let mut a = engines[0].begin().unwrap();
    a.insert(t, 1, v(10)).unwrap();
    a.insert(t, 2, v(20)).unwrap();
    a.commit().unwrap();

    // Explicitly rolled back before the crash.
    let mut b = engines[0].begin().unwrap();
    b.update(t, 1, v(99)).unwrap();
    b.insert(t, 3, v(30)).unwrap();
    b.rollback().unwrap();

    // Committed after the rollback.
    let mut c = engines[0].begin().unwrap();
    c.update(t, 2, v(21)).unwrap();
    c.commit().unwrap();

    // In flight at crash time, with durable footprint.
    let mut d = engines[0].begin().unwrap();
    d.update(t, 1, v(1000)).unwrap();
    d.insert(t, 4, v(40)).unwrap();
    engines[0].flush_tick();
    std::mem::forget(d);

    engines[0].crash();
    let (recovered, stats) = recover_node(&shared, NodeId(0)).unwrap();
    assert_eq!(
        stats.rolled_back, 1,
        "only d is in doubt (b self-rolled-back)"
    );

    let mut check = recovered.begin().unwrap();
    assert_eq!(check.get(t, 1).unwrap(), Some(v(10)));
    assert_eq!(check.get(t, 2).unwrap(), Some(v(21)));
    assert_eq!(check.get(t, 3).unwrap(), None);
    assert_eq!(check.get(t, 4).unwrap(), None);
    check.commit().unwrap();
}

#[test]
fn recovery_is_repeatable_after_back_to_back_crashes() {
    let (shared, engines) = cluster(1);
    let t = shared.create_table("t", 1, &[]).unwrap().id;
    let mut txn = engines[0].begin().unwrap();
    for k in 0..300 {
        txn.insert(t, k, v(k)).unwrap();
    }
    txn.commit().unwrap();

    let mut doomed = engines[0].begin().unwrap();
    doomed.update(t, 7, v(777)).unwrap();
    engines[0].flush_tick();
    std::mem::forget(doomed);
    engines[0].crash();

    // First recovery rolls the in-doubt transaction back …
    let (r1, s1) = recover_node(&shared, NodeId(0)).unwrap();
    assert_eq!(s1.rolled_back, 1);
    // … crash again immediately (no new work) …
    r1.crash();
    // … second recovery must be a no-op on state (idempotent replay; the
    // rollback is already durable thanks to the recovery-end force).
    let (r2, s2) = recover_node(&shared, NodeId(0)).unwrap();
    assert_eq!(s2.rolled_back, 0, "already rolled back durably");

    let mut check = r2.begin().unwrap();
    for k in 0..300 {
        assert_eq!(check.get(t, k).unwrap(), Some(v(k)), "key {k}");
    }
    check.commit().unwrap();
}

#[test]
fn storage_outage_surfaces_then_clears() {
    let (shared, engines) = cluster(1);
    let t = shared.create_table("t", 1, &[]).unwrap().id;
    let mut txn = engines[0].begin().unwrap();
    txn.insert(t, 1, v(1)).unwrap();
    txn.commit().unwrap();

    shared.storage.page_store().set_fail_io(true);
    // Cached pages still serve; force a cold page miss by evicting.
    engines[0].lbp.clear();
    let mut txn = engines[0].begin().unwrap();
    // The page may still be in the DBP; clear that too for a true cold read.
    shared.pmfs.buffer.clear();
    let result = txn.get(t, 1);
    assert!(
        matches!(result, Err(PmpError::StorageIo { .. })),
        "cold read during a storage outage must fail loudly: {result:?}"
    );
    drop(txn);

    shared.storage.page_store().set_fail_io(false);
    // The DBP was cleared while storage was down; rebuild from logs.
    pmp_engine::recovery::recover_dbp(&shared, &[NodeId(0)]).unwrap();
    let mut txn = engines[0].begin().unwrap();
    assert_eq!(txn.get(t, 1).unwrap(), Some(v(1)));
    txn.commit().unwrap();
}

#[test]
fn frozen_locks_block_until_recovery_releases_them() {
    let mut config = ClusterConfig::test(2);
    config.engine.lock_wait_timeout_ms = 150;
    let (shared, engines) = cluster_with(config);
    let t = shared.create_table("t", 1, &[]).unwrap().id;
    let mut txn = engines[0].begin().unwrap();
    txn.insert(t, 1, v(0)).unwrap();
    txn.commit().unwrap();

    // Node 0 dirties the page (holding its X PLock lazily) and crashes.
    let mut holder = engines[0].begin().unwrap();
    holder.update(t, 1, v(5)).unwrap();
    std::mem::forget(holder);
    engines[0].crash();

    // Node 1 cannot touch the page while the lock is frozen.
    let mut blocked = engines[1].begin().unwrap();
    let err = blocked.update(t, 1, v(9)).unwrap_err();
    assert!(
        matches!(err, PmpError::LockWaitTimeout),
        "frozen PLock must time the peer out, got {err:?}"
    );
    drop(blocked);

    // Recovery thaws the locks; node 1 proceeds.
    recover_node(&shared, NodeId(0)).unwrap();
    let mut txn = engines[1].begin().unwrap();
    txn.update(t, 1, v(9)).unwrap();
    txn.commit().unwrap();
    let mut check = engines[1].begin().unwrap();
    assert_eq!(check.get(t, 1).unwrap(), Some(v(9)));
    check.commit().unwrap();
}

#[test]
fn tit_slot_exhaustion_fails_cleanly_and_heals() {
    let mut config = ClusterConfig::test(1);
    config.engine.tit_slots = 4;
    config.engine.lock_wait_timeout_ms = 100;
    let (shared, engines) = cluster_with(config);
    let t = shared.create_table("t", 1, &[]).unwrap().id;

    // Park transactions on every slot.
    let mut parked = Vec::new();
    for k in 0..4 {
        let mut txn = engines[0].begin().unwrap();
        txn.insert(t, k, v(k)).unwrap();
        parked.push(txn);
    }
    // The fifth begin cannot get a slot.
    let err = engines[0].begin().map(|_| ()).unwrap_err();
    assert!(matches!(err, PmpError::Internal { .. }), "{err:?}");

    // Finishing one transaction frees a slot immediately on rollback...
    parked.pop().unwrap().rollback().unwrap();
    let mut txn = engines[0].begin().unwrap();
    txn.insert(t, 100, v(100)).unwrap();
    txn.commit().unwrap();
    // ...and committed slots recycle via the background min-view pass.
    for txn in parked {
        txn.commit().unwrap();
    }
    std::thread::sleep(Duration::from_millis(150));
    let mut txn = engines[0].begin().unwrap();
    assert_eq!(txn.get(t, 100).unwrap(), Some(v(100)));
    txn.commit().unwrap();
}

#[test]
fn rollback_restores_gsi_entries() {
    let (shared, engines) = cluster(1);
    let meta = shared.create_table("t", 2, &[1]).unwrap();
    let t = meta.id;
    let mut setup = engines[0].begin().unwrap();
    setup.insert(t, 1, RowValue::new(vec![1, 100])).unwrap();
    setup.commit().unwrap();

    let mut txn = engines[0].begin().unwrap();
    txn.update(t, 1, RowValue::new(vec![1, 200])).unwrap(); // moves GSI bucket
    txn.insert(t, 2, RowValue::new(vec![2, 100])).unwrap();
    txn.rollback().unwrap();

    let mut check = engines[0].begin().unwrap();
    assert_eq!(check.index_lookup(t, 0, 100, 10).unwrap(), vec![1]);
    assert_eq!(
        check.index_lookup(t, 0, 200, 10).unwrap(),
        Vec::<u64>::new()
    );
    check.commit().unwrap();
}

#[test]
fn crash_recovery_preserves_gsi_consistency() {
    let (shared, engines) = cluster(2);
    let meta = shared.create_table("t", 2, &[1]).unwrap();
    let t = meta.id;
    let mut setup = engines[0].begin().unwrap();
    for k in 0..100 {
        setup.insert(t, k, RowValue::new(vec![k, k % 5])).unwrap();
    }
    setup.commit().unwrap();

    // In-flight GSI-moving update at crash time.
    let mut doomed = engines[0].begin().unwrap();
    doomed.update(t, 3, RowValue::new(vec![3, 77])).unwrap();
    engines[0].flush_tick();
    std::mem::forget(doomed);
    engines[0].crash();
    let (recovered, _) = recover_node(&shared, NodeId(0)).unwrap();

    let mut check = recovered.begin().unwrap();
    for bucket in 0..5u64 {
        let mut via_index = check.index_lookup(t, 0, bucket, 1000).unwrap();
        via_index.sort_unstable();
        let rows = check.scan(t, 0, 1000).unwrap();
        let mut via_scan: Vec<u64> = rows
            .iter()
            .filter(|(_, val)| val.col(1) == bucket)
            .map(|(k, _)| *k)
            .collect();
        via_scan.sort_unstable();
        assert_eq!(via_index, via_scan, "bucket {bucket}");
    }
    assert!(check.index_lookup(t, 0, 77, 10).unwrap().is_empty());
    check.commit().unwrap();
}

#[test]
fn tombstone_purge_reclaims_space_instead_of_splitting() {
    let (shared, engines) = cluster(1);
    let t = shared.create_table("t", 1, &[]).unwrap().id;

    // Fill one leaf to capacity, then delete everything.
    let mut txn = engines[0].begin().unwrap();
    for k in 0..64 {
        txn.insert(t, k, v(k)).unwrap();
    }
    txn.commit().unwrap();
    let mut txn = engines[0].begin().unwrap();
    for k in 0..64 {
        txn.delete(t, k).unwrap();
    }
    txn.commit().unwrap();

    // Let the min-view broadcast advance past the deleting transaction.
    std::thread::sleep(Duration::from_millis(100));

    // Inserting into the "full" leaf must purge the tombstones rather than
    // splitting: afterwards the tree holds exactly the new keys.
    let pages_before = shared.storage.page_store().page_count();
    let mut txn = engines[0].begin().unwrap();
    for k in 100..160 {
        txn.insert(t, k, v(k)).unwrap();
    }
    txn.commit().unwrap();
    let pages_after = shared.storage.page_store().page_count();
    assert_eq!(
        pages_before, pages_after,
        "purge must avoid allocating split pages"
    );

    let mut check = engines[0].begin().unwrap();
    let rows = check.scan(t, 0, 1000).unwrap();
    assert_eq!(rows.len(), 60);
    assert!(rows.iter().all(|(k, _)| *k >= 100));
    check.commit().unwrap();
}

#[test]
fn quiesced_checkpoint_bounds_recovery_scan() {
    let (shared, engines) = cluster(1);
    let t = shared.create_table("t", 1, &[]).unwrap().id;

    // A large prefix of committed work, then a quiesced checkpoint.
    let mut txn = engines[0].begin().unwrap();
    for k in 0..2_000 {
        txn.insert(t, k, v(k)).unwrap();
    }
    txn.commit().unwrap();
    engines[0].flush_tick(); // flush + opportunistic checkpoint
    let checkpoint = engines[0].wal.stream().checkpoint();
    assert!(checkpoint.0 > 0, "quiesced checkpoint must have been taken");

    // A small tail of post-checkpoint work, one transaction in doubt.
    let mut txn = engines[0].begin().unwrap();
    for k in 2_000..2_050 {
        txn.insert(t, k, v(k)).unwrap();
    }
    txn.commit().unwrap();
    let mut doomed = engines[0].begin().unwrap();
    doomed.update(t, 1, v(666)).unwrap();
    engines[0].flush_frame_all_for_test();
    std::mem::forget(doomed);
    engines[0].crash();

    let (recovered, stats) = recover_node(&shared, NodeId(0)).unwrap();
    assert_eq!(stats.rolled_back, 1);
    assert!(
        stats.records_scanned < 500,
        "recovery must scan only the post-checkpoint tail, scanned {}",
        stats.records_scanned
    );
    let mut check = recovered.begin().unwrap();
    assert_eq!(check.get(t, 1).unwrap(), Some(v(1)));
    assert_eq!(check.get(t, 2_049).unwrap(), Some(v(2_049)));
    assert_eq!(check.scan(t, 0, 10_000).unwrap().len(), 2_050);
    check.commit().unwrap();
}

#[test]
fn acknowledged_commits_survive_crash_racing_committers() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Barrier, Mutex};

    // Regression: `Txn::commit` used to ignore `Wal::force`'s outcome, so
    // a commit whose record was truncated by a concurrent crash was still
    // acknowledged — and silently rolled back by recovery. Commits racing
    // the crash may fail, but an Ok must always survive.
    for round in 0..8u64 {
        let (shared, engines) = cluster(1);
        let t = shared.create_table("t", 1, &[]).unwrap().id;
        let acked = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let barrier = Arc::new(Barrier::new(4));

        let writers: Vec<_> = (0..3u64)
            .map(|w| {
                let engine = Arc::clone(&engines[0]);
                let acked = Arc::clone(&acked);
                let stop = Arc::clone(&stop);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let mut k = round * 100_000 + w * 10_000;
                    while !stop.load(Ordering::Relaxed) {
                        k += 1;
                        let committed = engine
                            .begin()
                            .and_then(|mut txn| {
                                txn.insert(t, k, v(k))?;
                                txn.commit()
                            })
                            .is_ok();
                        if committed {
                            acked.lock().unwrap().push(k);
                        }
                    }
                })
            })
            .collect();
        barrier.wait();
        // Let the committers build momentum, then crash mid-stream.
        std::thread::sleep(Duration::from_millis(2));
        engines[0].crash();
        stop.store(true, Ordering::Relaxed);
        for wtr in writers {
            wtr.join().unwrap();
        }

        let (recovered, _) = recover_node(&shared, NodeId(0)).unwrap();
        let keys = acked.lock().unwrap().clone();
        let mut check = recovered.begin().unwrap();
        for &k in &keys {
            assert_eq!(
                check.get(t, k).unwrap(),
                Some(v(k)),
                "round {round}: acknowledged commit of key {k} lost in crash"
            );
        }
        check.commit().unwrap();
    }
}

#[test]
fn crash_inside_collect_window_never_acks_truncated_commits() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Barrier, Mutex};

    // A long group-commit window means the crash usually lands while the
    // sync leader is still collecting followers. Whatever LSN the leader
    // achieves, each committer judges its OWN record against it: an Ok
    // must survive recovery, and a committer whose record was truncated
    // must have returned Err (refused the ack) — a follower must never
    // piggyback an ack on a group fsync that did not cover it.
    let mut windows_seen = 0u64;
    for round in 0..8u64 {
        let mut config = ClusterConfig::test(1);
        config.engine.wal_group_window_us = 500;
        let (shared, engines) = cluster_with(config);
        let t = shared.create_table("t", 1, &[]).unwrap().id;
        let acked = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let barrier = Arc::new(Barrier::new(4));

        let writers: Vec<_> = (0..3u64)
            .map(|w| {
                let engine = Arc::clone(&engines[0]);
                let acked = Arc::clone(&acked);
                let stop = Arc::clone(&stop);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let mut k = round * 100_000 + w * 10_000;
                    while !stop.load(Ordering::Relaxed) {
                        k += 1;
                        let committed = engine
                            .begin()
                            .and_then(|mut txn| {
                                txn.insert(t, k, v(k))?;
                                txn.commit()
                            })
                            .is_ok();
                        if committed {
                            acked.lock().unwrap().push(k);
                        }
                    }
                })
            })
            .collect();
        barrier.wait();
        // Let leaders open collect windows, then crash mid-window.
        std::thread::sleep(Duration::from_millis(2));
        engines[0].crash();
        stop.store(true, Ordering::Relaxed);
        for wtr in writers {
            wtr.join().unwrap();
        }
        windows_seen += engines[0].wal.group_stats().windows_waited.get();

        let (recovered, _) = recover_node(&shared, NodeId(0)).unwrap();
        let keys = acked.lock().unwrap().clone();
        let mut check = recovered.begin().unwrap();
        for &k in &keys {
            assert_eq!(
                check.get(t, k).unwrap(),
                Some(v(k)),
                "round {round}: commit of key {k} acked inside the collect window, lost in crash"
            );
        }
        check.commit().unwrap();
    }
    assert!(
        windows_seen > 0,
        "no collect window ever opened — the crash never raced the group leader"
    );
}

#[test]
fn async_commit_parked_in_group_window_is_never_acked_if_truncated() {
    use pmp_engine::AsyncSession;

    // The async variant of the collect-window race: commits park on the
    // scheduler while the group leader gathers followers. A crash inside
    // the window truncates the log tail; `drain_pending_on_crash` wakes the
    // parked commits with the truncated watermark, and each must judge its
    // OWN record against it. Every future must RESOLVE (no ack may hang on
    // a wake that will never come), and every Ok must survive recovery.
    for round in 0..6u64 {
        let mut config = ClusterConfig::test(1);
        config.engine.wal_group_window_us = 500;
        let (shared, engines) = cluster_with(config);
        let t = shared.create_table("t", 1, &[]).unwrap().id;

        let sessions: Vec<AsyncSession> = (0..8).map(|_| AsyncSession::open(&engines[0])).collect();
        let commits: Vec<(u64, _)> = sessions
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let k = round * 1_000 + i as u64;
                let _ = s.begin();
                let _ = s.insert(t, k, v(k));
                (k, s.commit())
            })
            .collect();
        // Land the crash while commits are (likely) parked in the window.
        std::thread::sleep(Duration::from_micros(300));
        engines[0].crash();

        let mut acked = Vec::new();
        for (k, fut) in commits {
            // `wait` must return: truncated records get an Err via the
            // crash drain (or the park backstop), never a silent hang.
            if fut.wait().is_ok() {
                acked.push(k);
            }
        }
        for s in &sessions {
            let _ = s.close().wait();
        }

        let (recovered, _) = recover_node(&shared, NodeId(0)).unwrap();
        let mut check = recovered.begin().unwrap();
        for &k in &acked {
            assert_eq!(
                check.get(t, k).unwrap(),
                Some(v(k)),
                "round {round}: async commit of key {k} acked but lost in crash"
            );
        }
        check.commit().unwrap();
    }
}

#[test]
fn acked_commits_survive_pmfs_replica_crash_mid_commit() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Barrier, Mutex};

    // SWARM-style PMFS replication (DESIGN.md §15): with replicas = 3 and
    // quorum = 2, killing any single PMFS replica mid-workload loses no
    // acknowledged commit — TIT slots, the TSO high-water mark and lock
    // state live on in the two survivors. Each round crashes a different
    // replica while committers are in flight, then ALSO crashes the engine
    // node and recovers it with the replica still down: recovery re-seats
    // transaction state through the surviving replicas.
    for round in 0..6u64 {
        let victim = (round % 3) as usize;
        let mut config = ClusterConfig::test(1);
        config.replicas = 3;
        config.repl_quorum = 2;
        let (shared, engines) = cluster_with(config);
        let t = shared.create_table("t", 1, &[]).unwrap().id;
        let acked = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let barrier = Arc::new(Barrier::new(4));

        let writers: Vec<_> = (0..3u64)
            .map(|w| {
                let engine = Arc::clone(&engines[0]);
                let acked = Arc::clone(&acked);
                let stop = Arc::clone(&stop);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let mut k = round * 100_000 + w * 10_000;
                    while !stop.load(Ordering::Relaxed) {
                        k += 1;
                        let committed = engine
                            .begin()
                            .and_then(|mut txn| {
                                txn.insert(t, k, v(k))?;
                                txn.commit()
                            })
                            .is_ok();
                        if committed {
                            acked.lock().unwrap().push(k);
                        }
                    }
                })
            })
            .collect();
        barrier.wait();
        // Let the committers build momentum, then kill a PMFS replica
        // mid-stream and let them keep committing against the survivors.
        std::thread::sleep(Duration::from_millis(2));
        assert!(shared.repl.crash_replica(victim), "round {round}");
        std::thread::sleep(Duration::from_millis(2));
        stop.store(true, Ordering::Relaxed);
        for wtr in writers {
            wtr.join().unwrap();
        }
        let keys = acked.lock().unwrap().clone();
        assert!(!keys.is_empty(), "round {round}: no commit ever landed");

        // Crash the node too: recovery must rebuild from WAL + the two
        // surviving PMFS replicas (the third is still scrambled).
        engines[0].crash();
        let (recovered, _) = recover_node(&shared, NodeId(0)).unwrap();
        let mut check = recovered.begin().unwrap();
        for &k in &keys {
            assert_eq!(
                check.get(t, k).unwrap(),
                Some(v(k)),
                "round {round}: acked commit of key {k} lost to replica {victim} crash"
            );
        }
        check.commit().unwrap();

        // Re-seat the dead replica from the survivors and keep working.
        assert!(shared.repl.recover_replica(victim), "round {round}");
        let probe = round * 100_000 + 99_999;
        let mut txn = recovered.begin().unwrap();
        txn.insert(t, probe, v(probe)).unwrap();
        txn.commit().unwrap();
        let snap = shared.repl.snapshot();
        assert_eq!(snap.evictions, 1, "round {round}");
        assert_eq!(snap.recoveries, 1, "round {round}");
    }
}

#[test]
fn losing_pmfs_quorum_refuses_new_transactions_until_reseat() {
    let mut config = ClusterConfig::test(1);
    config.replicas = 3;
    config.repl_quorum = 2;
    let (shared, engines) = cluster_with(config);
    let t = shared.create_table("t", 1, &[]).unwrap().id;
    let mut txn = engines[0].begin().unwrap();
    txn.insert(t, 1, v(1)).unwrap();
    txn.commit().unwrap();

    // One replica down: still at quorum, service continues.
    assert!(shared.repl.crash_replica(0));
    let mut txn = engines[0].begin().unwrap();
    txn.insert(t, 2, v(2)).unwrap();
    txn.commit().unwrap();

    // Two down: below quorum — new transactions are refused loudly
    // rather than run against a single possibly-stale copy.
    assert!(shared.repl.crash_replica(1));
    let err = engines[0].begin().map(|_| ()).unwrap_err();
    assert!(
        matches!(err, PmpError::FusionUnavailable { .. }),
        "quorum loss must surface as FusionUnavailable, got {err:?}"
    );

    // Re-seating one replica restores quorum; nothing acked was lost.
    assert!(shared.repl.recover_replica(0));
    let mut check = engines[0].begin().unwrap();
    assert_eq!(check.get(t, 1).unwrap(), Some(v(1)));
    assert_eq!(check.get(t, 2).unwrap(), Some(v(2)));
    check.commit().unwrap();
}

#[test]
fn replicas_one_keeps_the_unreplicated_fast_path() {
    // The default configuration (replicas = 1) must behave exactly like
    // the pre-replication code: no fan-out writes, no majority reads, and
    // crash_replica refuses to kill the only copy.
    let (shared, engines) = cluster(1);
    let t = shared.create_table("t", 1, &[]).unwrap().id;
    let mut txn = engines[0].begin().unwrap();
    txn.insert(t, 1, v(1)).unwrap();
    txn.commit().unwrap();

    assert!(
        !shared.repl.crash_replica(0),
        "the sole replica must not be crashable"
    );
    let snap = shared.repl.snapshot();
    assert_eq!(snap.replicas, 1);
    assert_eq!(snap.replicated_writes, 0, "R=1 never fans out");
    assert_eq!(snap.majority_reads, 0, "R=1 never majority-reads");
    assert_eq!(snap.evictions, 0);
}

#[test]
fn lone_committer_escapes_the_group_window_after_adaptation() {
    use std::time::Instant;

    // A solo committer must not pay the full collect window forever: after
    // EMPTY_WINDOW_LIMIT consecutive empty windows the leader stops
    // waiting, so steady-state lone-commit latency is window-free.
    let mut config = ClusterConfig::test(1);
    config.engine.wal_group_window_us = 3000; // 3ms — huge next to a no-latency commit
    let (shared, engines) = cluster_with(config);
    let t = shared.create_table("t", 1, &[]).unwrap().id;

    // Warm-up: the first few lone commits each open the window and find
    // it empty, tripping the adaptive skip.
    for k in 0..5u64 {
        let mut txn = engines[0].begin().unwrap();
        txn.insert(t, k, v(k)).unwrap();
        txn.commit().unwrap();
    }
    let g = engines[0].wal.group_stats();
    assert!(
        g.empty_windows.get() >= 3,
        "warm-up never tripped the empty-window streak: {g:?}"
    );

    let waited_before = g.windows_waited.get();
    let start = Instant::now();
    for k in 100..120u64 {
        let mut txn = engines[0].begin().unwrap();
        txn.insert(t, k, v(k)).unwrap();
        txn.commit().unwrap();
    }
    let elapsed = start.elapsed();
    // 20 un-adapted commits would busy-wait >= 60ms of window; adapted
    // ones skip the wait entirely (background ticks may re-arm it once).
    assert!(
        elapsed < Duration::from_millis(30),
        "20 lone commits took {elapsed:?} — adaptive window skip not engaged"
    );
    let waited = engines[0].wal.group_stats().windows_waited.get() - waited_before;
    assert!(
        waited <= 4,
        "adapted lone committer still waited {waited} windows"
    );
}
