//! Compressed shared storage and redo log: torn-frame crash recovery, the
//! `Off` passthrough guarantee, and the effective-bandwidth gains the
//! compressed-bytes cost model must deliver on compressible workloads.

use std::sync::Arc;

use pmp_common::{ClusterConfig, CompressionConfig, Lsn, NodeId, PageId, StorageLatencyConfig};
use pmp_engine::page::PageKind;
use pmp_engine::recovery::recover_node;
use pmp_engine::redo::RedoRecord;
use pmp_engine::row::RowValue;
use pmp_engine::shared::Shared;
use pmp_engine::NodeEngine;
use pmp_io::{CqePayload, SqeOp};

fn cluster_with(config: ClusterConfig) -> (Arc<Shared>, Vec<Arc<NodeEngine>>) {
    let shared = Shared::new(config);
    let engines = (0..config.nodes)
        .map(|i| NodeEngine::start(Arc::clone(&shared), NodeId(i as u16)))
        .collect();
    (shared, engines)
}

fn v(x: u64) -> RowValue {
    RowValue::new(vec![x])
}

/// A wide, repetitive row — the compressible payload the probes use.
fn wide(x: u64) -> RowValue {
    RowValue::new(vec![x % 4; 8])
}

// ---- failure injection ------------------------------------------------------

/// Storage-side tail loss that tears the final compressed frame (the commit
/// record of the last transaction, which `log_atomic` forces into its own
/// frame). The framing's length prefix proves the frame incomplete, so
/// recovery must stop cleanly at the tear — the transaction whose commit
/// record it held is treated as never acknowledged and rolled back; nothing
/// after the tear may surface.
#[test]
fn torn_compressed_commit_frame_rolls_back_cleanly() {
    let mut config = ClusterConfig::test(1);
    config.compression = CompressionConfig::lz4();
    let (shared, engines) = cluster_with(config);
    let t = shared.create_table("t", 1, &[]).unwrap().id;

    let mut a = engines[0].begin().unwrap();
    for k in 0..50 {
        a.insert(t, k, v(k)).unwrap();
    }
    a.commit().unwrap();

    // B's commit frame is the last frame in the stream.
    let mut b = engines[0].begin().unwrap();
    b.insert(t, 1000, v(1000)).unwrap();
    b.commit().unwrap();

    engines[0].crash();
    let stream = shared.storage.redo_stream(NodeId(0));
    let durable_before = stream.durable_lsn();
    stream.truncate_durable_for_injection(1);
    assert!(stream.durable_lsn() < durable_before, "tail actually lost");
    // The disaggregated buffer would otherwise resurrect B's page images;
    // this scenario models losing both (the log tear is the interesting
    // part — B must be decided by the log alone).
    shared.pmfs.buffer.clear();

    let (recovered, stats) = recover_node(&shared, NodeId(0)).unwrap();
    assert!(stats.records_scanned > 0, "A's history replayed");
    assert_eq!(stats.rolled_back, 1, "B is in doubt without its commit");

    let mut check = recovered.begin().unwrap();
    for k in 0..50 {
        assert_eq!(check.get(t, k).unwrap(), Some(v(k)), "key {k}");
    }
    assert_eq!(
        check.get(t, 1000).unwrap(),
        None,
        "a commit inside a torn frame was never acknowledged"
    );
    check.commit().unwrap();
}

// ---- Off purity -------------------------------------------------------------

/// `compression = Off` must be a bit-for-bit passthrough: no framing in the
/// log (the pre-compression record format decodes the stream end to end, no
/// dead ranges), physical bytes equal logical bytes everywhere, and the
/// page-slotting machinery never engages.
#[test]
fn compression_off_is_bit_for_bit_passthrough() {
    let mut config = ClusterConfig::test(1);
    config.compression = CompressionConfig::off();
    let (shared, engines) = cluster_with(config);
    let t = shared.create_table("t", 8, &[]).unwrap().id;

    let mut txn = engines[0].begin().unwrap();
    for k in 0..500 {
        txn.insert(t, k, wide(k)).unwrap();
    }
    txn.commit().unwrap();
    let mut txn = engines[0].begin().unwrap();
    for k in (0..500).step_by(3) {
        txn.update(t, k, wide(k + 1)).unwrap();
    }
    txn.commit().unwrap();
    engines[0].flush_tick();

    let stream = shared.storage.redo_stream(NodeId(0));
    stream.sync();
    assert_eq!(
        stream.logical_byte_count(),
        stream.physical_byte_count(),
        "no compression overhead or savings on the log"
    );
    let chunk = stream.read_gather(Lsn::ZERO, usize::MAX);
    assert_eq!(
        chunk.data.len() as u64,
        stream.logical_byte_count(),
        "no framing bytes, no dead ranges"
    );
    let mut buf = &chunk.data[..];
    let mut records = 0usize;
    while let Some((_, used)) = RedoRecord::decode_from(buf).unwrap() {
        buf = &buf[used..];
        records += 1;
    }
    assert!(buf.is_empty(), "stream is exactly a run of raw records");
    assert!(records > 500, "whole history decoded ({records} records)");

    let st = shared.storage.page_store().stats();
    assert!(st.page_logical_bytes.get() > 0, "pages were written");
    assert_eq!(
        st.page_logical_bytes.get(),
        st.page_physical_bytes.get(),
        "pages stored raw"
    );
    assert_eq!(st.delta_writes.get(), 0, "no delta region on raw slots");
    assert_eq!(st.recompressions.get(), 0);
}

// ---- effective-bandwidth probes --------------------------------------------

/// Replay-heavy single-node recovery at realistic storage latency; returns
/// (logical log bytes per charged nanosecond, records scanned).
fn recovery_effective_bw(comp: CompressionConfig) -> (f64, u64) {
    let mut config = ClusterConfig::test(1);
    config.compression = comp;
    config.storage_latency = StorageLatencyConfig::realistic();
    // A wider scan chunk keeps the per-chunk base cost amortized, the same
    // knob a real deployment would turn for sequential recovery reads.
    config.engine.recovery_chunk_bytes = 256 * 1024;
    let (shared, engines) = cluster_with(config);
    let t = shared.create_table("t", 8, &[]).unwrap().id;

    let mut txn = engines[0].begin().unwrap();
    for k in 0..500u64 {
        txn.insert(t, k, wide(k)).unwrap();
    }
    txn.commit().unwrap();
    for round in 0..30u64 {
        let mut txn = engines[0].begin().unwrap();
        for k in 0..500u64 {
            txn.update(t, k, wide(k + round)).unwrap();
        }
        txn.commit().unwrap();
    }

    engines[0].crash();
    // Lose the disaggregated buffer too: recovery must pull everything from
    // the log and shared storage, making the scan the dominant cost.
    shared.pmfs.buffer.clear();

    let charged_before = shared.storage.page_store().stats().charged_io_ns.get()
        + shared.storage.log_totals().charged_ns;
    let (recovered, stats) = recover_node(&shared, NodeId(0)).unwrap();
    let charged = shared.storage.page_store().stats().charged_io_ns.get()
        + shared.storage.log_totals().charged_ns
        - charged_before;
    assert!(charged > 0, "recovery paid for its storage traffic");

    let mut check = recovered.begin().unwrap();
    assert_eq!(check.get(t, 7).unwrap(), Some(wide(7 + 29)));
    check.commit().unwrap();

    let totals = shared.storage.log_totals();
    println!(
        "  log bytes: logical={} physical={} ({:.2}x)",
        totals.logical_bytes,
        totals.physical_bytes,
        totals.logical_bytes as f64 / totals.physical_bytes.max(1) as f64
    );
    (
        totals.logical_bytes as f64 / charged as f64,
        stats.records_scanned,
    )
}

/// Acceptance probe: with compression on, the recovery scan of a
/// compressible history must show ≥1.5× effective bandwidth (same logical
/// bytes replayed, fewer charged nanoseconds).
#[test]
fn compressed_recovery_scan_improves_effective_bandwidth() {
    let (bw_off, scanned_off) = recovery_effective_bw(CompressionConfig::off());
    let (bw_on, scanned_on) = recovery_effective_bw(CompressionConfig::lz4());
    assert_eq!(scanned_off, scanned_on, "identical logical history");
    println!(
        "recovery scan: off={:.4} on={:.4} B/ns ratio={:.2} records={}",
        bw_off,
        bw_on,
        bw_on / bw_off,
        scanned_on
    );
    assert!(
        bw_on >= 1.5 * bw_off,
        "recovery-scan effective bandwidth: off={bw_off:.4} on={bw_on:.4} B/ns \
         (ratio {:.2}, need ≥1.5)",
        bw_on / bw_off
    );
}

/// Leftmost-leaf walk via sibling pointers (pages are warm in the LBP).
fn leaf_pages(engine: &Arc<NodeEngine>, root: PageId) -> Vec<PageId> {
    use pmp_pmfs::PLockMode;
    let mut current = root;
    loop {
        let _g = engine.plock(current, PLockMode::S).unwrap();
        let frame = engine.frame(current).unwrap();
        let page = frame.page.read();
        match &page.kind {
            PageKind::Internal(node) => current = node.children[0],
            PageKind::Leaf(_) => break,
        }
    }
    let mut ids = Vec::new();
    while !current.is_null() {
        let _g = engine.plock(current, PLockMode::S).unwrap();
        let frame = engine.frame(current).unwrap();
        let page = frame.page.read();
        ids.push(current);
        current = page.next;
    }
    ids
}

/// Cold page reads through the io ring at realistic storage latency;
/// returns logical bytes per charged nanosecond. The ring batches the
/// misses, so the charge is max(base) + Σ physical-byte terms — exactly
/// where compression pays on an LBP-miss storm.
fn cold_read_effective_bw(comp: CompressionConfig) -> f64 {
    let mut config = ClusterConfig::test(1);
    config.compression = comp;
    config.storage_latency = StorageLatencyConfig::realistic();
    let (shared, engines) = cluster_with(config);
    let meta = shared.create_table("t", 8, &[]).unwrap();

    let mut txn = engines[0].begin().unwrap();
    for k in 0..3000u64 {
        txn.insert(meta.id, k, wide(k)).unwrap();
    }
    txn.commit().unwrap();

    // Seed shared storage with every leaf (the DBP write-back path would do
    // this on eviction; doing it directly keeps the probe deterministic).
    let leaves = leaf_pages(&engines[0], meta.root);
    assert!(
        leaves.len() >= 20,
        "want a leaf spread, got {}",
        leaves.len()
    );
    for id in &leaves {
        let page = engines[0].frame(*id).unwrap().page.read().clone();
        shared.storage.write_page(*id, Arc::new(page)).unwrap();
    }

    let store = shared.storage.page_store();
    let logical: u64 = leaves.iter().map(|id| store.logical_size(*id) as u64).sum();
    assert!(logical > 0);

    let before = store.stats().charged_io_ns.get();
    engines[0]
        .io
        .submit_all(
            leaves
                .iter()
                .map(|id| (SqeOp::ReadPage(*id), id.0))
                .collect(),
        )
        .unwrap();
    for _ in 0..leaves.len() {
        let cqe = engines[0].io.wait_cqe().expect("ring is live");
        assert!(matches!(cqe.result.unwrap(), CqePayload::Page(Some(_))));
    }
    let charged = store.stats().charged_io_ns.get() - before;
    let physical: u64 = leaves
        .iter()
        .map(|id| store.physical_size(*id) as u64)
        .sum();
    println!(
        "  {} leaves: logical={} physical={} ({:.2}x)",
        leaves.len(),
        logical,
        physical,
        logical as f64 / physical.max(1) as f64
    );
    logical as f64 / charged as f64
}

/// Acceptance probe: a batched LBP-miss storm over compressible pages must
/// show ≥1.5× effective bandwidth with the page codec on.
#[test]
fn compressed_cold_page_reads_improve_effective_bandwidth() {
    let bw_off = cold_read_effective_bw(CompressionConfig::off());
    let bw_on = cold_read_effective_bw(CompressionConfig::lz4());
    println!(
        "cold reads: off={:.4} on={:.4} B/ns ratio={:.2}",
        bw_off,
        bw_on,
        bw_on / bw_off
    );
    assert!(
        bw_on >= 1.5 * bw_off,
        "cold-read effective bandwidth: off={bw_off:.4} on={bw_on:.4} B/ns \
         (ratio {:.2}, need ≥1.5)",
        bw_on / bw_off
    );
}
