//! PLock protocol stress: many nodes × threads hammering a small page set
//! with mixed S/X acquisitions through the full stack (local lazy cache +
//! Lock Fusion + negotiation). A ghost reader/writer counter per page
//! proves the protocol's exclusion invariant *across nodes*: never a
//! writer with any other holder.
//!
//! Note what is and isn't guaranteed: the X PLock excludes *other nodes*,
//! while threads within one node are expected to coordinate with latches
//! (§4.3.1 "It does not apply to concurrent page access within a single
//! node") — so the ghost state tracks holders per (page, node) and checks
//! cross-node exclusion only.

use std::sync::atomic::{AtomicI32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pmp_common::{LatencyConfig, NodeId, PageId};
use pmp_engine::plock_local::{LocalPLocks, NegotiationHandler};
use pmp_pmfs::{PLockFusion, PLockMode};
use pmp_rdma::Fabric;
use pmp_repl::ReplicatedFabric;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

const NODES: usize = 4;
const THREADS_PER_NODE: usize = 3;
const PAGES: usize = 8;
const OPS: usize = 400;

/// Cross-node ghost state for one page: bit-packed per-node holder counts.
/// `writers[n]` / `readers[n]` count node n's threads inside a guard.
struct Ghost {
    readers: [AtomicI32; NODES],
    writers: [AtomicI32; NODES],
}

impl Ghost {
    fn new() -> Self {
        Ghost {
            readers: Default::default(),
            writers: Default::default(),
        }
    }

    fn check_invariant(&self, me: usize) {
        // If any node writes, no OTHER node may hold anything.
        let mut writing_nodes = 0;
        let mut holding_nodes = 0;
        for n in 0..NODES {
            let w = self.writers[n].load(Ordering::SeqCst);
            let r = self.readers[n].load(Ordering::SeqCst);
            assert!(w >= 0 && r >= 0, "negative ghost count");
            if w > 0 {
                writing_nodes += 1;
            }
            if w > 0 || r > 0 {
                holding_nodes += 1;
            }
        }
        if self.writers[me].load(Ordering::SeqCst) > 0 {
            assert!(
                writing_nodes == 1 && holding_nodes == 1,
                "node {me} holds X but {holding_nodes} nodes hold the page"
            );
        }
    }
}

#[test]
fn cross_node_exclusion_holds_under_stress() {
    let fabric = Arc::new(Fabric::new(LatencyConfig::disabled()));
    let fusion = Arc::new(PLockFusion::new(Arc::new(ReplicatedFabric::single(
        Arc::clone(&fabric),
    ))));
    let locals: Vec<Arc<LocalPLocks>> = (0..NODES)
        .map(|n| {
            let l = LocalPLocks::new(
                NodeId(n as u16),
                Arc::clone(&fusion),
                true,
                Duration::from_secs(10),
            );
            fusion.register_node(NodeId(n as u16), NegotiationHandler::new(Arc::clone(&l)));
            l
        })
        .collect();
    let ghosts: Arc<Vec<Ghost>> = Arc::new((0..PAGES).map(|_| Ghost::new()).collect());

    std::thread::scope(|scope| {
        for (node, node_local) in locals.iter().enumerate() {
            for thread in 0..THREADS_PER_NODE {
                let local = Arc::clone(node_local);
                let ghosts = Arc::clone(&ghosts);
                scope.spawn(move || {
                    let mut rng =
                        SmallRng::seed_from_u64((node * THREADS_PER_NODE + thread) as u64);
                    for _ in 0..OPS {
                        let page = rng.random_range(0..PAGES);
                        let exclusive = rng.random_range(0..100u32) < 30;
                        let mode = if exclusive {
                            PLockMode::X
                        } else {
                            PLockMode::S
                        };
                        let guard = local.acquire(PageId(page as u64 + 1), mode).unwrap();
                        let ghost = &ghosts[page];
                        if exclusive {
                            ghost.writers[node].fetch_add(1, Ordering::SeqCst);
                        } else {
                            ghost.readers[node].fetch_add(1, Ordering::SeqCst);
                        }
                        ghost.check_invariant(node);
                        // Hold briefly so overlaps actually happen.
                        if rng.random_range(0..4u32) == 0 {
                            std::thread::yield_now();
                        }
                        ghost.check_invariant(node);
                        if exclusive {
                            ghost.writers[node].fetch_sub(1, Ordering::SeqCst);
                        } else {
                            ghost.readers[node].fetch_sub(1, Ordering::SeqCst);
                        }
                        drop(guard);
                    }
                });
            }
        }
    });

    // Drain: every lock must be releasable and the fusion table must agree
    // that handing everything back leaves no holders.
    for local in &locals {
        local.release_idle();
    }
    for page in 0..PAGES {
        assert!(
            fusion.holders(PageId(page as u64 + 1)).is_empty(),
            "page {page} still held after drain"
        );
        assert_eq!(fusion.queue_len(PageId(page as u64 + 1)), 0);
    }
    assert_eq!(
        fusion.stats().timeouts.get(),
        0,
        "no stress op may time out"
    );
}

#[test]
fn negotiation_storm_converges() {
    // Two nodes repeatedly demand X on the SAME page: every acquisition is
    // a negotiation-driven transfer. The protocol must neither deadlock
    // nor starve either side.
    let fabric = Arc::new(Fabric::new(LatencyConfig::disabled()));
    let fusion = Arc::new(PLockFusion::new(Arc::new(ReplicatedFabric::single(
        Arc::clone(&fabric),
    ))));
    let locals: Vec<Arc<LocalPLocks>> = (0..2)
        .map(|n| {
            let l = LocalPLocks::new(
                NodeId(n as u16),
                Arc::clone(&fusion),
                true,
                Duration::from_secs(10),
            );
            fusion.register_node(NodeId(n as u16), NegotiationHandler::new(Arc::clone(&l)));
            l
        })
        .collect();

    let page = PageId(42);
    let counts: Vec<_> = (0..2).map(|_| Arc::new(AtomicI32::new(0))).collect();
    std::thread::scope(|scope| {
        for node in 0..2 {
            let local = Arc::clone(&locals[node]);
            let count = Arc::clone(&counts[node]);
            scope.spawn(move || {
                for _ in 0..300 {
                    let g = local.acquire(page, PLockMode::X).unwrap();
                    count.fetch_add(1, Ordering::SeqCst);
                    drop(g);
                }
            });
        }
    });
    assert_eq!(counts[0].load(Ordering::SeqCst), 300);
    assert_eq!(counts[1].load(Ordering::SeqCst), 300);
    // On a single-core host the threads interleave only at scheduler
    // granularity, so the absolute count is small — but transfers must
    // have happened (each one is a negotiation + re-acquire).
    assert!(
        fusion.stats().negotiations.get() >= 1,
        "the storm must actually have negotiated transfers"
    );
    assert!(fusion.holders(page).len() <= 1);
}
