//! MVCC semantics under the microscope: every branch of Algorithm 1, long
//! version chains, tombstone re-insertion, and stale lock words.

use std::sync::Arc;

use pmp_common::{ClusterConfig, NodeId};
use pmp_engine::row::RowValue;
use pmp_engine::shared::Shared;
use pmp_engine::NodeEngine;

fn cluster_with(config: ClusterConfig) -> (Arc<Shared>, Vec<Arc<NodeEngine>>) {
    let shared = Shared::new(config);
    let engines = (0..config.nodes)
        .map(|i| NodeEngine::start(Arc::clone(&shared), NodeId(i as u16)))
        .collect();
    (shared, engines)
}

fn v(x: u64) -> RowValue {
    RowValue::new(vec![x])
}

/// Snapshot-isolation cluster with CTS backfill disabled, so *every*
/// visibility decision goes through the TIT (Algorithm 1 lines 7–21)
/// instead of the row-header fast path (lines 2–5).
fn si_no_backfill(nodes: usize) -> (Arc<Shared>, Vec<Arc<NodeEngine>>) {
    let mut config = ClusterConfig::test(nodes);
    config.engine.read_committed = false;
    config.engine.cts_backfill = false;
    cluster_with(config)
}

#[test]
fn visibility_resolves_through_remote_tit_without_backfill() {
    let (shared, engines) = si_no_backfill(2);
    let t = shared.create_table("t", 1, &[]).unwrap().id;

    // Node 0 commits; its rows carry CSN_INIT CTS (no backfill).
    let mut w = engines[0].begin().unwrap();
    w.insert(t, 1, v(7)).unwrap();
    w.commit().unwrap();

    // Node 1 must resolve visibility via a remote TIT read.
    let before = shared.fabric.stats().reads.get();
    let mut r = engines[1].begin().unwrap();
    assert_eq!(r.get(t, 1).unwrap(), Some(v(7)));
    r.commit().unwrap();
    assert!(
        shared.fabric.stats().reads.get() > before,
        "without backfill the reader must consult the TIT over the fabric"
    );
}

#[test]
fn long_version_chain_reconstructs_old_snapshots() {
    let (shared, engines) = si_no_backfill(2);
    let t = shared.create_table("t", 1, &[]).unwrap().id;

    let mut setup = engines[0].begin().unwrap();
    setup.insert(t, 1, v(0)).unwrap();
    setup.commit().unwrap();

    // Pin an old snapshot on node 1 (snapshot isolation).
    let mut old_reader = engines[1].begin().unwrap();
    assert_eq!(old_reader.get(t, 1).unwrap(), Some(v(0)));

    // Ten newer versions from alternating nodes.
    for i in 1..=10u64 {
        let mut w = engines[(i % 2) as usize].begin().unwrap();
        w.update(t, 1, v(i)).unwrap();
        w.commit().unwrap();
    }

    // The pinned snapshot still reconstructs version 0 through the chain.
    assert_eq!(old_reader.get(t, 1).unwrap(), Some(v(0)));
    old_reader.commit().unwrap();

    // A fresh snapshot sees the newest version.
    let mut fresh = engines[1].begin().unwrap();
    assert_eq!(fresh.get(t, 1).unwrap(), Some(v(10)));
    fresh.commit().unwrap();
}

#[test]
fn delete_then_reinsert_respects_snapshots() {
    let (shared, engines) = si_no_backfill(2);
    let t = shared.create_table("t", 1, &[]).unwrap().id;

    let mut setup = engines[0].begin().unwrap();
    setup.insert(t, 1, v(1)).unwrap();
    setup.commit().unwrap();

    let mut pinned = engines[1].begin().unwrap();
    assert_eq!(pinned.get(t, 1).unwrap(), Some(v(1)));

    // Delete and re-insert (different value) in two later transactions.
    let mut d = engines[0].begin().unwrap();
    d.delete(t, 1).unwrap();
    d.commit().unwrap();
    let mut i = engines[0].begin().unwrap();
    i.insert(t, 1, v(2)).unwrap();
    i.commit().unwrap();

    // The pinned snapshot predates both: still sees v1.
    assert_eq!(pinned.get(t, 1).unwrap(), Some(v(1)));
    pinned.commit().unwrap();

    let mut fresh = engines[1].begin().unwrap();
    assert_eq!(fresh.get(t, 1).unwrap(), Some(v(2)));
    fresh.commit().unwrap();
}

#[test]
fn snapshot_between_delete_and_reinsert_sees_nothing() {
    let (shared, engines) = si_no_backfill(1);
    let t = shared.create_table("t", 1, &[]).unwrap().id;
    let mut setup = engines[0].begin().unwrap();
    setup.insert(t, 1, v(1)).unwrap();
    setup.commit().unwrap();

    let mut d = engines[0].begin().unwrap();
    d.delete(t, 1).unwrap();
    d.commit().unwrap();

    let mut mid = engines[0].begin().unwrap(); // snapshot: deleted, not reinserted
    let mut i = engines[0].begin().unwrap();
    i.insert(t, 1, v(2)).unwrap();
    i.commit().unwrap();

    assert_eq!(mid.get(t, 1).unwrap(), None, "tombstone visible as absence");
    mid.commit().unwrap();
}

#[test]
fn own_uncommitted_writes_are_visible_to_self_only() {
    let (shared, engines) = si_no_backfill(2);
    let t = shared.create_table("t", 1, &[]).unwrap().id;
    let mut setup = engines[0].begin().unwrap();
    setup.insert(t, 1, v(1)).unwrap();
    setup.commit().unwrap();

    let mut w = engines[0].begin().unwrap();
    w.update(t, 1, v(42)).unwrap();
    assert_eq!(w.get(t, 1).unwrap(), Some(v(42)), "read-your-writes");

    let mut peer = engines[1].begin().unwrap();
    assert_eq!(peer.get(t, 1).unwrap(), Some(v(1)), "peers see committed");
    peer.commit().unwrap();
    w.rollback().unwrap();

    let mut after = engines[0].begin().unwrap();
    assert_eq!(after.get(t, 1).unwrap(), Some(v(1)));
    after.commit().unwrap();
}

#[test]
fn stale_lock_word_does_not_block_new_writers() {
    // A committed transaction's gid stays in the row header (the lock word)
    // until someone overwrites it. A new writer must recognize it as free
    // without any waiting — even across nodes.
    let (shared, engines) = si_no_backfill(2);
    let t = shared.create_table("t", 1, &[]).unwrap().id;
    let mut w = engines[0].begin().unwrap();
    w.insert(t, 1, v(1)).unwrap();
    w.commit().unwrap();

    // Immediately write from the other node; no sleep, no recycle window.
    let start = std::time::Instant::now();
    let mut w2 = engines[1].begin().unwrap();
    w2.update(t, 1, v(2)).unwrap();
    w2.commit().unwrap();
    assert!(
        start.elapsed() < std::time::Duration::from_millis(500),
        "no lock wait may happen on a committed lock word"
    );
    assert_eq!(engines[0].stats.lock_waits.get(), 0);
    assert_eq!(engines[1].stats.lock_waits.get(), 0);
}

#[test]
fn scan_is_snapshot_consistent_while_peer_mutates() {
    let mut config = ClusterConfig::test(2);
    config.engine.read_committed = false;
    let (shared, engines) = cluster_with(config);
    let t = shared.create_table("t", 1, &[]).unwrap().id;
    let mut setup = engines[0].begin().unwrap();
    for k in 0..200 {
        setup.insert(t, k, v(1)).unwrap();
    }
    setup.commit().unwrap();

    // Reader pins a snapshot, then a peer rewrites everything.
    let mut reader = engines[1].begin().unwrap();
    let _ = reader.get(t, 0).unwrap(); // pin the view
    let mut writer = engines[0].begin().unwrap();
    for k in 0..200 {
        writer.update(t, k, v(2)).unwrap();
    }
    writer.commit().unwrap();

    let rows = reader.scan(t, 0, 1000).unwrap();
    assert_eq!(rows.len(), 200);
    assert!(
        rows.iter().all(|(_, val)| val.col(0) == 1),
        "a pinned snapshot's scan must not see the concurrent rewrite"
    );
    reader.commit().unwrap();
}
