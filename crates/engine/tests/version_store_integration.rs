//! The per-node MVCC version store under concurrency: snapshot readers
//! racing committers, cross-node DBP-invalidation fencing, and the
//! CTS-cache-only baseline (store disabled).

use std::sync::Arc;

use pmp_common::{ClusterConfig, NodeId};
use pmp_engine::row::RowValue;
use pmp_engine::shared::Shared;
use pmp_engine::NodeEngine;

fn cluster_with(config: ClusterConfig) -> (Arc<Shared>, Vec<Arc<NodeEngine>>) {
    let shared = Shared::new(config);
    let engines = (0..config.nodes)
        .map(|i| NodeEngine::start(Arc::clone(&shared), NodeId(i as u16)))
        .collect();
    (shared, engines)
}

/// Snapshot-isolation cluster (the store only matters when snapshots lag).
fn si_cluster(nodes: usize) -> (Arc<Shared>, Vec<Arc<NodeEngine>>) {
    let mut config = ClusterConfig::test(nodes);
    config.engine.read_committed = false;
    cluster_with(config)
}

fn v(x: u64) -> RowValue {
    RowValue::new(vec![x])
}

/// A pinned snapshot reader racing a committer never sees the too-new
/// version, and once the chain is warmed its re-reads are version-store
/// hits (no undo walk).
#[test]
fn pinned_snapshot_resolves_old_version_from_store() {
    let (shared, engines) = si_cluster(1);
    let t = shared.create_table("t", 1, &[]).unwrap().id;

    let mut setup = engines[0].begin().unwrap();
    setup.insert(t, 1, v(0)).unwrap();
    setup.commit().unwrap();

    // Pin a snapshot that covers only version 0.
    let mut reader = engines[0].begin().unwrap();
    assert_eq!(reader.get(t, 1).unwrap(), Some(v(0)));

    // A committer stacks newer versions; its commit backfill publishes the
    // new head AND the predecessor image into the store.
    for i in 1..=3u64 {
        let mut w = engines[0].begin().unwrap();
        w.update(t, 1, v(i)).unwrap();
        w.commit().unwrap();
    }

    let hits_before = engines[0].version_store.stats.hits.get();
    // The pinned snapshot must keep resolving version 0 — never v(3), and
    // (first re-read may fall back and fill) eventually without undo walks.
    for _ in 0..4 {
        assert_eq!(reader.get(t, 1).unwrap(), Some(v(0)));
    }
    reader.commit().unwrap();
    assert!(
        engines[0].version_store.stats.hits.get() > hits_before,
        "warmed re-reads of an old version must hit the version store"
    );

    // A fresh snapshot sees the newest committed version.
    let mut fresh = engines[0].begin().unwrap();
    assert_eq!(fresh.get(t, 1).unwrap(), Some(v(3)));
    fresh.commit().unwrap();
}

/// An uncommitted write is never served from the version store (or
/// anywhere else): concurrent snapshot readers keep seeing the committed
/// predecessor until the writer's CTS is assigned.
#[test]
fn reader_never_sees_uncommitted_version() {
    let (shared, engines) = si_cluster(2);
    let t = shared.create_table("t", 1, &[]).unwrap().id;

    let mut setup = engines[0].begin().unwrap();
    setup.insert(t, 1, v(10)).unwrap();
    setup.commit().unwrap();

    // Writer on node 0 modifies the row but does NOT commit.
    let mut writer = engines[0].begin().unwrap();
    writer.update(t, 1, v(99)).unwrap();

    // Readers on both nodes — repeatedly, so warmed store paths are also
    // exercised — must see the committed version only.
    for _ in 0..3 {
        for e in &engines {
            let mut r = e.begin().unwrap();
            assert_eq!(
                r.get(t, 1).unwrap(),
                Some(v(10)),
                "uncommitted version leaked to a snapshot reader"
            );
            r.commit().unwrap();
        }
    }

    writer.commit().unwrap();
    let mut r = engines[1].begin().unwrap();
    assert_eq!(r.get(t, 1).unwrap(), Some(v(99)));
    r.commit().unwrap();
}

/// Multi-node fence: a remote writer's page push clears the reader node's
/// frame valid flag; the refresh must invalidate the page's local version
/// chains (counted) before adopting the newer image, and subsequent reads
/// must return the new version.
#[test]
fn remote_push_fences_local_version_chains() {
    let (shared, engines) = si_cluster(2);
    let t = shared.create_table("t", 1, &[]).unwrap().id;

    let mut setup = engines[0].begin().unwrap();
    setup.insert(t, 1, v(1)).unwrap();
    setup.commit().unwrap();

    // Node 1 pins a snapshot covering only v(1). Its first read is a
    // header fast-path hit (no chain yet).
    let mut pinned = engines[1].begin().unwrap();
    assert_eq!(pinned.get(t, 1).unwrap(), Some(v(1)));

    // Remote writer on node 0 commits v(2); its push clears node 1's
    // frame valid flag. The pinned reader's re-read adopts the new image,
    // finds the header too new for its snapshot, and walks + fills — now
    // node 1 holds a warmed chain for the key.
    let mut w = engines[0].begin().unwrap();
    w.update(t, 1, v(2)).unwrap();
    w.commit().unwrap();
    assert_eq!(pinned.get(t, 1).unwrap(), Some(v(1)));
    assert!(
        !engines[1].version_store.is_empty(),
        "pinned re-read must have filled a local chain"
    );

    let fences_before = engines[1].version_store.stats.invalidations.get();

    // A second remote commit invalidates node 1's frame again; the next
    // refresh must fence the warmed chains (counted) before adopting the
    // newer image, and reads on both snapshots stay correct.
    let mut w2 = engines[0].begin().unwrap();
    w2.update(t, 1, v(3)).unwrap();
    w2.commit().unwrap();

    let mut fresh = engines[1].begin().unwrap();
    assert_eq!(
        fresh.get(t, 1).unwrap(),
        Some(v(3)),
        "reader adopted the new page image but returned a stale version"
    );
    fresh.commit().unwrap();
    assert!(
        engines[1].version_store.stats.invalidations.get() > fences_before,
        "refresh of a remotely-invalidated frame must fence the local chains"
    );

    // The pinned snapshot still resolves its version after the fence.
    assert_eq!(pinned.get(t, 1).unwrap(), Some(v(1)));
    pinned.commit().unwrap();
}

/// `version_store_bytes = 0` is the CTS-cache-only baseline: nothing is
/// ever stored, every resolution falls back, and results stay identical.
#[test]
fn disabled_store_is_a_pure_fallback_baseline() {
    let mut config = ClusterConfig::test(1);
    config.engine.read_committed = false;
    config.engine.version_store_bytes = 0;
    let (shared, engines) = cluster_with(config);
    let t = shared.create_table("t", 1, &[]).unwrap().id;

    let mut setup = engines[0].begin().unwrap();
    setup.insert(t, 1, v(0)).unwrap();
    setup.commit().unwrap();

    let mut reader = engines[0].begin().unwrap();
    assert_eq!(reader.get(t, 1).unwrap(), Some(v(0)));
    let mut w = engines[0].begin().unwrap();
    w.update(t, 1, v(1)).unwrap();
    w.commit().unwrap();
    assert_eq!(reader.get(t, 1).unwrap(), Some(v(0)));
    reader.commit().unwrap();

    let s = &engines[0].version_store.stats;
    assert_eq!(s.hits.get(), 0, "disabled store must never hit");
    assert_eq!(s.publishes.get(), 0, "disabled store must never publish");
    assert_eq!(engines[0].version_store.len(), 0);
}

/// Concurrent hammer: one committer thread stacking versions of a hot key,
/// reader threads on both nodes pinning snapshots and re-reading. No reader
/// may ever observe a value newer than its snapshot-entry read.
#[test]
fn concurrent_readers_never_see_too_new_versions() {
    let (shared, engines) = si_cluster(2);
    let t = shared.create_table("t", 1, &[]).unwrap().id;

    let mut setup = engines[0].begin().unwrap();
    setup.insert(t, 1, v(0)).unwrap();
    setup.commit().unwrap();

    let writer = {
        let e = Arc::clone(&engines[0]);
        std::thread::spawn(move || {
            for i in 1..=50u64 {
                let mut w = e.begin().unwrap();
                w.update(t, 1, v(i)).unwrap();
                w.commit().unwrap();
            }
        })
    };

    let readers: Vec<_> = (0..2)
        .map(|n| {
            let e = Arc::clone(&engines[n]);
            std::thread::spawn(move || {
                for _ in 0..25 {
                    let mut r = e.begin().unwrap();
                    let first = r.get(t, 1).unwrap().expect("row exists");
                    // Within one snapshot, every re-read returns the same
                    // version — the store must never serve a newer one.
                    for _ in 0..4 {
                        assert_eq!(r.get(t, 1).unwrap(), Some(first.clone()));
                    }
                    r.commit().unwrap();
                }
            })
        })
        .collect();

    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
}
