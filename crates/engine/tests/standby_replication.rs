//! Cross-region standby (§3): log shipping, committed-only reads, and
//! promotion to a fresh primary region.

use std::sync::Arc;

use pmp_common::{ClusterConfig, NodeId};
use pmp_engine::row::RowValue;
use pmp_engine::shared::Shared;
use pmp_engine::standby::Standby;
use pmp_engine::NodeEngine;

fn cluster(nodes: u16) -> (Arc<Shared>, Vec<Arc<NodeEngine>>) {
    let shared = Shared::new(ClusterConfig::test(nodes as usize));
    let engines = (0..nodes)
        .map(|i| NodeEngine::start(Arc::clone(&shared), NodeId(i)))
        .collect();
    (shared, engines)
}

fn v(x: u64) -> RowValue {
    RowValue::new(vec![x])
}

/// Force both nodes' logs durable so the standby can consume everything.
fn ship(engines: &[Arc<NodeEngine>]) {
    for e in engines {
        e.wal.force(e.wal.stream().end_lsn());
    }
}

#[test]
fn standby_replays_committed_changes_from_both_primaries() {
    let (shared, engines) = cluster(2);
    let meta = shared.create_table("t", 1, &[]).unwrap();
    let standby = Standby::attach(&shared, &[NodeId(0), NodeId(1)]);

    let mut a = engines[0].begin().unwrap();
    for k in 0..100 {
        a.insert(meta.id, k, v(k)).unwrap();
    }
    a.commit().unwrap();
    let mut b = engines[1].begin().unwrap();
    for k in 0..100 {
        b.update(meta.id, k, v(k + 1000)).unwrap();
    }
    b.commit().unwrap();

    ship(&engines);
    let applied = standby.catch_up().unwrap();
    assert!(applied > 0);
    for k in 0..100 {
        assert_eq!(
            standby.read(&meta, k).unwrap(),
            Some(v(k + 1000)),
            "key {k}"
        );
    }
    // Incremental: more traffic, another catch-up.
    let mut c = engines[0].begin().unwrap();
    c.update(meta.id, 5, v(5555)).unwrap();
    c.commit().unwrap();
    ship(&engines);
    standby.catch_up().unwrap();
    assert_eq!(standby.read(&meta, 5).unwrap(), Some(v(5555)));
}

#[test]
fn standby_reads_skip_uncommitted_versions() {
    let (shared, engines) = cluster(1);
    let meta = shared.create_table("t", 1, &[]).unwrap();
    let standby = Standby::attach(&shared, &[NodeId(0)]);

    let mut setup = engines[0].begin().unwrap();
    setup.insert(meta.id, 1, v(10)).unwrap();
    setup.commit().unwrap();

    // In-flight update whose records reach the log before the commit does.
    let mut open = engines[0].begin().unwrap();
    open.update(meta.id, 1, v(999)).unwrap();
    ship(&engines);
    standby.catch_up().unwrap();
    assert_eq!(
        standby.read(&meta, 1).unwrap(),
        Some(v(10)),
        "uncommitted version must be skipped via shipped undo"
    );

    open.commit().unwrap();
    ship(&engines);
    standby.catch_up().unwrap();
    assert_eq!(standby.read(&meta, 1).unwrap(), Some(v(999)));
}

#[test]
fn promotion_creates_a_working_region_without_in_doubt_data() {
    let (shared, engines) = cluster(2);
    let meta = shared.create_table("t", 1, &[]).unwrap();
    let standby = Standby::attach(&shared, &[NodeId(0), NodeId(1)]);

    let mut committed = engines[0].begin().unwrap();
    for k in 0..50 {
        committed.insert(meta.id, k, v(k)).unwrap();
    }
    committed.commit().unwrap();

    // The primary region "fails" with one transaction in flight.
    let mut doomed = engines[1].begin().unwrap();
    doomed.update(meta.id, 3, v(666)).unwrap();
    std::mem::forget(doomed);
    ship(&engines);
    standby.catch_up().unwrap();

    // Promote: a new region with fresh PMFS + storage, same catalog.
    let fresh = standby.promote(ClusterConfig::test(1)).unwrap();
    let node = NodeEngine::start(Arc::clone(&fresh), NodeId(0));
    let mut txn = node.begin().unwrap();
    for k in 0..50 {
        assert_eq!(txn.get(meta.id, k).unwrap(), Some(v(k)), "key {k}");
    }
    assert_eq!(
        txn.get(meta.id, 3).unwrap(),
        Some(v(3)),
        "in-doubt update must have been rolled back at promotion"
    );
    // The promoted region accepts new writes, including page allocation.
    for k in 1000..1200 {
        txn.insert(meta.id, k, v(k)).unwrap();
    }
    txn.commit().unwrap();
    let mut check = node.begin().unwrap();
    assert_eq!(check.scan(meta.id, 0, 10_000).unwrap().len(), 250);
    check.commit().unwrap();
}

#[test]
fn standby_catches_up_while_primaries_write_concurrently() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let (shared, engines) = cluster(2);
    let meta = shared.create_table("t", 1, &[]).unwrap();
    let standby = Standby::attach(&shared, &[NodeId(0), NodeId(1)]);

    // Writers hammer both primaries while the standby replays in a loop —
    // the incremental LLSN_bound apply must stay consistent against live,
    // growing logs.
    let stop = Arc::new(AtomicBool::new(false));
    let standby = Arc::new(standby);
    let mut handles = Vec::new();
    for (i, engine) in engines.iter().enumerate() {
        let engine = Arc::clone(engine);
        let stop = Arc::clone(&stop);
        let table = meta.id;
        handles.push(std::thread::spawn(move || {
            let mut round = 0u64;
            while !stop.load(Ordering::Acquire) {
                let mut txn = engine.begin().unwrap();
                for k in 0..20u64 {
                    let key = i as u64 * 1000 + k;
                    match txn.update(table, key, v(round)) {
                        Ok(()) => {}
                        Err(pmp_common::PmpError::KeyNotFound) => {
                            txn.insert(table, key, v(round)).unwrap();
                        }
                        Err(e) => panic!("{e}"),
                    }
                }
                txn.commit().unwrap();
                round += 1;
            }
            round
        }));
    }
    let stop2 = Arc::clone(&stop);
    let standby2 = Arc::clone(&standby);
    let shipping = std::thread::spawn(move || {
        while !stop2.load(Ordering::Acquire) {
            standby2.catch_up().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    });

    std::thread::sleep(std::time::Duration::from_millis(400));
    stop.store(true, Ordering::Release);
    let rounds: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    shipping.join().unwrap();
    assert!(
        rounds.iter().all(|r| *r > 2),
        "writers must have progressed"
    );

    // Final ship + catch-up, then the standby must agree with the primary
    // on every committed row.
    ship(&engines);
    standby.catch_up().unwrap();
    let mut txn = engines[0].begin().unwrap();
    for i in 0..2u64 {
        for k in 0..20u64 {
            let key = i * 1000 + k;
            let primary_view = txn.get(meta.id, key).unwrap();
            let standby_view = standby.read(&meta, key).unwrap();
            assert_eq!(primary_view, standby_view, "key {key}");
        }
    }
    txn.commit().unwrap();
}
