//! Async-session / scheduler integration tests: the open-transaction
//! ceiling on a tiny worker pool, park/wake on cross-node PLock conflicts,
//! and the min-active-snapshot version-store GC.

use std::sync::Arc;
use std::time::Duration;

use pmp_common::{ClusterConfig, NodeId};
use pmp_engine::row::RowValue;
use pmp_engine::shared::Shared;
use pmp_engine::{AsyncSession, NodeEngine};

fn cluster_with(config: ClusterConfig) -> (Arc<Shared>, Vec<Arc<NodeEngine>>) {
    let shared = Shared::new(config);
    let engines = (0..config.nodes)
        .map(|i| NodeEngine::start(Arc::clone(&shared), NodeId(i as u16)))
        .collect();
    (shared, engines)
}

fn v(x: u64) -> RowValue {
    RowValue::new(vec![x])
}

/// The tentpole acceptance check: 256 sessions on a 2-worker scheduler all
/// hold transactions open at the same time. With blocking sessions the
/// ceiling would be the thread count; parked transactions hold no thread,
/// so the ceiling is the TIT, not the pool.
#[test]
fn hammer_256_sessions_on_two_workers_holds_all_open() {
    const SESSIONS: u64 = 256;
    let mut config = ClusterConfig::test(1);
    config.engine.sched_workers = 2;
    let (shared, engines) = cluster_with(config);
    let t = shared.create_table("t", 1, &[]).unwrap().id;

    let sessions: Vec<AsyncSession> = (0..SESSIONS)
        .map(|_| AsyncSession::open(&engines[0]))
        .collect();

    // Phase 1: every session begins and writes one distinct row. Only after
    // ALL inserts resolve do we commit anything, so at the barrier below
    // exactly 256 transactions are open concurrently.
    let pending: Vec<_> = sessions
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let _ = s.begin();
            s.insert(t, i as u64, v(i as u64))
        })
        .collect();
    for (i, fut) in pending.into_iter().enumerate() {
        fut.wait().unwrap_or_else(|e| panic!("insert {i}: {e:?}"));
    }

    let open = engines[0].stats.open_txns.get();
    assert_eq!(open, SESSIONS, "all sessions must be open at the barrier");
    let hwm = engines[0].stats.open_txns.hwm();
    assert!(
        hwm >= SESSIONS,
        "open-txn high-water mark {hwm} below the session count"
    );
    let sched = engines[0].sched.stats();
    assert!(
        sched.tasks.hwm() >= SESSIONS,
        "each session is one actor task, hwm {}",
        sched.tasks.hwm()
    );

    // Phase 2: commit everything and verify.
    let commits: Vec<_> = sessions.iter().map(|s| s.commit()).collect();
    for (i, fut) in commits.into_iter().enumerate() {
        fut.wait().unwrap_or_else(|e| panic!("commit {i}: {e:?}"));
    }
    assert_eq!(engines[0].stats.open_txns.get(), 0);
    for s in &sessions {
        s.close().wait().unwrap();
    }
    let mut check = engines[0].begin().unwrap();
    for k in 0..SESSIONS {
        assert_eq!(check.get(t, k).unwrap(), Some(v(k)), "key {k}");
    }
    check.commit().unwrap();
}

/// A transaction parked on a PLock that another node holds lazily must wake
/// when the lazy holder releases it through negotiation — without burning a
/// worker thread while it waits.
#[test]
fn txn_parked_on_remote_plock_wakes_on_lazy_release() {
    let mut config = ClusterConfig::test(2);
    config.engine.lazy_plock_release = true;
    let (shared, engines) = cluster_with(config);
    let t = shared.create_table("t", 1, &[]).unwrap().id;

    // Node 0 writes the row and commits; lazy mode keeps its X PLock.
    let mut holder = engines[0].begin().unwrap();
    holder.insert(t, 1, v(10)).unwrap();
    holder.commit().unwrap();

    // Node 1 updates the same row through an async session: the PLock
    // conflict negotiates a release from node 0; meanwhile the actor parks.
    let s = AsyncSession::open(&engines[1]);
    s.begin().wait().unwrap();
    s.update(t, 1, v(20)).wait().unwrap();
    s.commit().wait().unwrap();
    s.close().wait().unwrap();

    let mut check = engines[0].begin().unwrap();
    assert_eq!(check.get(t, 1).unwrap(), Some(v(20)));
    check.commit().unwrap();
    let negotiations = shared.pmfs.plock.stats().negotiations.get();
    assert!(
        negotiations > 0,
        "the conflicting update must have negotiated the lazy lock away"
    );
}

/// Two async sessions on different nodes contending on one row: the loser
/// parks (scheduler-level wait), the winner's commit wakes it, and both
/// updates land in some serial order.
#[test]
fn contending_async_sessions_serialize_on_one_row() {
    let (shared, engines) = cluster_with(ClusterConfig::test(2));
    let t = shared.create_table("t", 1, &[]).unwrap().id;
    let mut setup = engines[0].begin().unwrap();
    setup.insert(t, 1, v(0)).unwrap();
    setup.commit().unwrap();

    let a = AsyncSession::open(&engines[0]);
    let b = AsyncSession::open(&engines[1]);
    a.begin().wait().unwrap();
    b.begin().wait().unwrap();
    // A takes the row lock; B's update must wait for A's commit.
    a.get_for_update(t, 1).wait().unwrap();
    let blocked = b.update(t, 1, v(200));
    std::thread::sleep(Duration::from_millis(20));
    assert!(
        !blocked.is_ready(),
        "B's conflicting update resolved while A still held the row"
    );
    a.update(t, 1, v(100)).wait().unwrap();
    a.commit().wait().unwrap();
    blocked.wait().unwrap();
    b.commit().wait().unwrap();
    a.close().wait().unwrap();
    b.close().wait().unwrap();

    let mut check = engines[0].begin().unwrap();
    assert_eq!(check.get(t, 1).unwrap(), Some(v(200)), "last writer wins");
    check.commit().unwrap();
}

/// The min-view broadcast feeds the version-store GC: once every snapshot
/// that could see an old version is gone, the background pass drops it and
/// counts the eviction.
#[test]
fn version_store_gc_drops_versions_below_min_active_snapshot() {
    let mut config = ClusterConfig::test(1);
    // Snapshot isolation pins the reader's begin-time snapshot; under the
    // default read committed the re-read below would just see the newest
    // version and never touch the old chain.
    config.engine.read_committed = false;
    let (shared, engines) = cluster_with(config);
    let t = shared.create_table("t", 1, &[]).unwrap().id;
    let mut setup = engines[0].begin().unwrap();
    setup.insert(t, 1, v(1)).unwrap();
    setup.commit().unwrap();

    // An old reader pins its snapshot, then the row advances twice.
    let mut reader = engines[0].begin().unwrap();
    assert_eq!(reader.get(t, 1).unwrap(), Some(v(1)));
    for x in [2u64, 3] {
        let mut w = engines[0].begin().unwrap();
        w.update(t, 1, v(x)).unwrap();
        w.commit().unwrap();
    }
    // The reader's re-read reconstructs the old version, filling the store
    // with versions only its (old) snapshot still needs.
    assert_eq!(reader.get(t, 1).unwrap(), Some(v(1)));
    reader.commit().unwrap();

    // With the old snapshot retired, the min-view tick GCs the stale
    // versions. Poll rather than sleep a fixed amount: the broadcast runs
    // every `min_view_interval_ms`.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let stats = &engines[0].version_store.stats;
    while stats.gc_evictions.get() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        stats.gc_evictions.get() > 0,
        "min-view GC never dropped the superseded versions"
    );

    // Current data is untouched.
    let mut check = engines[0].begin().unwrap();
    assert_eq!(check.get(t, 1).unwrap(), Some(v(3)));
    check.commit().unwrap();
}
