//! Integration tests for the io-ring page-load path: multi-in-flight
//! loads on one LBP shard, prefetch, and crash/wipe races against queued
//! and in-flight SQEs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

use pmp_common::{ClusterConfig, NodeId, PageId, PmpError, StorageLatencyConfig};
use pmp_engine::page::Page;
use pmp_engine::shared::Shared;
use pmp_engine::NodeEngine;

/// A cluster whose storage charges the realistic default latency (100µs
/// reads) while the fabric stays free — the storage round-trip is the only
/// thing the loads below wait on.
fn cluster_with_storage_latency(nodes: usize) -> (Arc<Shared>, Vec<Arc<NodeEngine>>) {
    let mut config = ClusterConfig::test(nodes);
    config.storage_latency = StorageLatencyConfig::default();
    let shared = Shared::new(config);
    let engines = (0..nodes)
        .map(|i| NodeEngine::start(Arc::clone(&shared), NodeId(i as u16)))
        .collect();
    (shared, engines)
}

/// Page ids (≥ `start`) that all hash to the same LBP shard, written to
/// shared storage only — never the DBP — so every first access is a
/// storage load through the ring.
fn same_shard_pages(shared: &Shared, engine: &NodeEngine, start: u64, want: usize) -> Vec<PageId> {
    let target = engine.lbp.shard_of(PageId(start));
    let mut ids = Vec::new();
    let mut id = start;
    while ids.len() < want {
        if engine.lbp.shard_of(PageId(id)) == target {
            shared
                .storage
                .page_store()
                .write(PageId(id), Arc::new(Page::new_leaf(PageId(id))))
                .unwrap();
            ids.push(PageId(id));
        }
        id += 1;
    }
    ids
}

#[test]
fn single_lbp_shard_sustains_eight_inflight_loads() {
    const LOADS: usize = 8;
    // Retry a few times: the assertion needs all eight submissions to
    // overlap before the first completion, and a slow CI scheduler can
    // stagger thread starts past the 100µs storage latency.
    for attempt in 0..5 {
        let (shared, engines) = cluster_with_storage_latency(1);
        let engine = &engines[0];
        let ids = same_shard_pages(&shared, engine, 10_000 + attempt * 1_000, LOADS);

        engine.io.stats().reset();
        let barrier = Arc::new(Barrier::new(LOADS));
        let threads: Vec<_> = ids
            .iter()
            .map(|&id| {
                let engine = Arc::clone(engine);
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    barrier.wait();
                    engine.frame(id).map(|f| f.page.read().id)
                })
            })
            .collect();
        for (t, &id) in threads.into_iter().zip(&ids) {
            assert_eq!(t.join().unwrap().unwrap(), id);
        }

        let hwm = engine.io.stats().inflight_hwm();
        assert_eq!(engine.stats.pages_loaded_storage.get(), LOADS as u64);
        if hwm >= LOADS as u64 {
            return; // depth reached: the shard did not serialize the loads
        }
    }
    panic!("never observed {LOADS} concurrent in-flight loads on one LBP shard");
}

#[test]
fn prefetch_loads_pages_without_blocking_and_counts() {
    let (shared, engines) = cluster_with_storage_latency(1);
    let engine = &engines[0];
    let ids = same_shard_pages(&shared, engine, 20_000, 4);

    let tokens: Vec<_> = ids.iter().map(|&id| engine.prefetch(id)).collect();
    assert!(
        tokens.iter().all(Option::is_some),
        "cold pages must submit storage prefetches"
    );
    assert_eq!(engine.stats.prefetch_submitted.get(), 4);

    // A demand access either waits on the prefetch sentinel or hits the
    // installed frame — never a duplicate storage read once resident.
    for &id in &ids {
        assert_eq!(engine.frame(id).unwrap().page.read().id, id);
    }
    assert_eq!(engine.stats.pages_loaded_storage.get(), 4);

    // Resident pages refuse further prefetch appointments.
    assert!(engine.prefetch(ids[0]).is_none());
    assert!(engine.prefetch(PageId::NULL).is_none());
}

#[test]
fn crash_racing_queued_and_inflight_loads_aborts_cleanly() {
    for round in 0..10 {
        let (shared, engines) = cluster_with_storage_latency(1);
        let engine = &engines[0];
        let ids = same_shard_pages(&shared, engine, 30_000 + round * 1_000, 12);

        let barrier = Arc::new(Barrier::new(ids.len() + 1));
        let ok = Arc::new(AtomicUsize::new(0));
        let failed = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = ids
            .iter()
            .map(|&id| {
                let engine = Arc::clone(engine);
                let barrier = Arc::clone(&barrier);
                let ok = Arc::clone(&ok);
                let failed = Arc::clone(&failed);
                thread::spawn(move || {
                    barrier.wait();
                    match engine.frame(id) {
                        Ok(f) => {
                            assert_eq!(f.page.read().id, id);
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(
                            PmpError::NodeUnavailable { .. }
                            | PmpError::Aborted { .. }
                            | PmpError::StorageIo { .. },
                        ) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected load error under crash: {e:?}"),
                    }
                })
            })
            .collect();
        barrier.wait();
        // Crash while some SQEs are queued and some are mid-charge.
        engine.crash();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(
            ok.load(Ordering::Relaxed) + failed.load(Ordering::Relaxed),
            ids.len(),
            "every waiter must resolve, not hang"
        );
        // No sentinel leak: a leaked `Loading` slot would make these
        // re-loads wait forever on the shard condvar (loads that raced
        // past the wipe may have installed detached or fresh frames, which
        // is fine — they must just never wedge the page).
        for &id in &ids {
            assert_eq!(engine.frame(id).unwrap().page.read().id, id);
        }
        let (recovered, _) = pmp_engine::recovery::recover_node(&shared, NodeId(0)).unwrap();
        for &id in &ids {
            assert_eq!(recovered.frame(id).unwrap().page.read().id, id);
        }
    }
}

#[test]
fn storage_outage_during_load_surfaces_and_recovers() {
    let (shared, engines) = cluster_with_storage_latency(1);
    let engine = &engines[0];
    let ids = same_shard_pages(&shared, engine, 40_000, 2);

    shared.storage.page_store().set_fail_io(true);
    let err = engine.frame(ids[0]).unwrap_err();
    assert!(
        matches!(err, PmpError::StorageIo { .. }),
        "outage must surface as StorageIo, got {err:?}"
    );
    shared.storage.page_store().set_fail_io(false);

    // The aborted sentinel must not wedge the page: a retry loads it.
    assert_eq!(engine.frame(ids[0]).unwrap().page.read().id, ids[0]);
    assert_eq!(engine.frame(ids[1]).unwrap().page.read().id, ids[1]);
}
