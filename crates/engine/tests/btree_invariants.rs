//! Structural invariants of the multi-node B-link tree, checked after
//! randomized and concurrent histories.

use std::collections::HashSet;
use std::sync::Arc;

use pmp_common::{ClusterConfig, NodeId, PageId};
use pmp_engine::page::PageKind;
use pmp_engine::row::RowValue;
use pmp_engine::shared::Shared;
use pmp_engine::NodeEngine;

fn cluster(nodes: u16) -> (Arc<Shared>, Vec<Arc<NodeEngine>>) {
    let shared = Shared::new(ClusterConfig::test(nodes as usize));
    let engines = (0..nodes)
        .map(|i| NodeEngine::start(Arc::clone(&shared), NodeId(i)))
        .collect();
    (shared, engines)
}

/// Walk the whole tree through one engine, checking every B-link invariant:
/// fences nest, sibling chains are sorted and terminated, internal
/// separators route into children whose key ranges respect them, and every
/// key appears exactly once at leaf level. Returns the number of keys seen.
fn check_tree(engine: &Arc<NodeEngine>, root: PageId) -> usize {
    use pmp_pmfs::PLockMode;

    // Collect the leftmost page of every level from the root.
    let mut level_heads = Vec::new();
    let mut current = root;
    loop {
        let _g = engine.plock(current, PLockMode::S).unwrap();
        let frame = engine.frame(current).unwrap();
        let page = frame.page.read();
        level_heads.push((page.level, current));
        match &page.kind {
            PageKind::Internal(node) => current = node.children[0],
            PageKind::Leaf(_) => break,
        }
    }

    // Walk each level left-to-right via sibling pointers.
    let mut keys_seen = 0;
    let mut seen_pages = HashSet::new();
    for &(level, head) in &level_heads {
        let mut current = head;
        let mut last_high: Option<u128> = None;
        let mut last_key: Option<u128> = None;
        while !current.is_null() {
            assert!(seen_pages.insert(current), "page {current} linked twice");
            let _g = engine.plock(current, PLockMode::S).unwrap();
            let frame = engine.frame(current).unwrap();
            let page = frame.page.read();
            assert_eq!(page.level, level, "sibling chain must stay on-level");

            // Fences nest: this page starts where the previous ended.
            if let Some(prev_high) = last_high {
                let first_key = match &page.kind {
                    PageKind::Leaf(l) => l.rows.first().map(|r| r.key),
                    PageKind::Internal(i) => i.keys.first().copied(),
                };
                if let Some(k) = first_key {
                    assert!(
                        k >= prev_high,
                        "keys must not fall below the previous page's fence"
                    );
                }
            }
            match &page.kind {
                PageKind::Leaf(l) => {
                    for row in &l.rows {
                        if let Some(prev) = last_key {
                            assert!(row.key > prev, "leaf keys must be globally sorted");
                        }
                        assert!(page.covers(row.key), "row outside its page's fence");
                        last_key = Some(row.key);
                        keys_seen += 1;
                    }
                }
                PageKind::Internal(i) => {
                    assert_eq!(i.children.len(), i.keys.len() + 1);
                    for pair in i.keys.windows(2) {
                        assert!(pair[0] < pair[1], "separators must be sorted");
                    }
                    for k in &i.keys {
                        assert!(page.covers(*k), "separator outside fence");
                    }
                }
            }
            if page.next.is_null() {
                assert_eq!(page.high, None, "rightmost page must be unfenced");
            } else {
                assert!(page.high.is_some(), "non-rightmost page needs a fence");
            }
            last_high = page.high;
            current = page.next;
        }
    }
    keys_seen
}

#[test]
fn sequential_inserts_build_a_valid_multilevel_tree() {
    let (shared, engines) = cluster(1);
    let meta = shared.create_table("t", 1, &[]).unwrap();
    let mut txn = engines[0].begin().unwrap();
    for k in 0..3_000u64 {
        txn.insert(meta.id, k, RowValue::new(vec![k])).unwrap();
    }
    txn.commit().unwrap();
    assert_eq!(check_tree(&engines[0], meta.root), 3_000);
}

#[test]
fn random_inserts_from_all_nodes_keep_invariants() {
    let (shared, engines) = cluster(3);
    let meta = shared.create_table("t", 1, &[]).unwrap();

    let handles: Vec<_> = engines
        .iter()
        .enumerate()
        .map(|(i, engine)| {
            let engine = Arc::clone(engine);
            let table = meta.id;
            std::thread::spawn(move || {
                // Interleaved random-ish keys so splits happen everywhere
                // and separators propagate concurrently.
                for j in 0..800u64 {
                    let key =
                        j.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64) % 1_000_000;
                    let mut txn = engine.begin().unwrap();
                    // Collisions across the hash are possible: upsert.
                    match txn.insert(table, key, RowValue::new(vec![key])) {
                        Ok(()) => txn.commit().map(|_| ()).unwrap(),
                        Err(pmp_common::PmpError::DuplicateKey) => {
                            txn.commit().map(|_| ()).unwrap()
                        }
                        Err(e) => panic!("{e}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Check from every node: each sees the same valid structure.
    let n = check_tree(&engines[0], meta.root);
    assert!(n > 2_000, "most of the 2400 inserts are distinct ({n})");
    for engine in &engines[1..] {
        assert_eq!(check_tree(engine, meta.root), n);
    }
}

#[test]
fn llsn_is_monotone_per_page_across_nodes() {
    // After cross-node updates of the same rows, every page's LLSN must
    // exceed any LLSN previously observed for it — spot-checked by
    // scanning redo records per page.
    use pmp_common::Lsn;
    use pmp_engine::redo::LogDecoder;
    use std::collections::HashMap;

    let (shared, engines) = cluster(2);
    let meta = shared.create_table("t", 1, &[]).unwrap();
    let mut txn = engines[0].begin().unwrap();
    for k in 0..200u64 {
        txn.insert(meta.id, k, RowValue::new(vec![0])).unwrap();
    }
    txn.commit().unwrap();

    for round in 1..=5u64 {
        let engine = &engines[(round % 2) as usize];
        let mut txn = engine.begin().unwrap();
        for k in (0..200u64).step_by(7) {
            txn.update(meta.id, k, RowValue::new(vec![round])).unwrap();
        }
        txn.commit().unwrap();
    }

    // Merge both logs: per page, LLSNs in (cross-node) generation order.
    // Within a file byte order == generation order; across files we sort
    // all records per page by LLSN and verify strict monotonicity (no
    // duplicate LLSN for one page — each page update got a fresh stamp).
    let mut per_page: HashMap<pmp_common::PageId, Vec<u64>> = HashMap::new();
    let dec = LogDecoder::new(shared.config.compression);
    for node in [NodeId(0), NodeId(1)] {
        let stream = shared.storage.redo_stream(node);
        stream.sync();
        let mut carry = stream.read_gather(Lsn::ZERO, usize::MAX).data;
        dec.drain(&mut carry, &mut |rec| {
            if rec.is_page_op() {
                per_page.entry(rec.page).or_default().push(rec.llsn.0);
            }
            Ok(())
        })
        .unwrap();
        assert!(carry.is_empty(), "whole log decodes cleanly");
    }
    for (page, mut llsns) in per_page {
        let len = llsns.len();
        llsns.sort_unstable();
        llsns.dedup();
        assert_eq!(len, llsns.len(), "duplicate LLSN for {page}");
    }
}
