//! End-to-end engine tests: single-node transactions, multi-node buffer
//! fusion, row-lock conflicts, deadlocks, rollback, and crash recovery.

use std::sync::Arc;
use std::time::Duration;

use pmp_common::{ClusterConfig, NodeId, PmpError, TableId};
use pmp_engine::recovery::{recover_cluster, recover_node};
use pmp_engine::row::RowValue;
use pmp_engine::shared::Shared;
use pmp_engine::NodeEngine;

fn cluster(nodes: u16) -> (Arc<Shared>, Vec<Arc<NodeEngine>>) {
    let shared = Shared::new(ClusterConfig::test(nodes as usize));
    let engines = (0..nodes)
        .map(|i| NodeEngine::start(Arc::clone(&shared), NodeId(i)))
        .collect();
    (shared, engines)
}

fn v(cols: &[u64]) -> RowValue {
    RowValue::new(cols.to_vec())
}

fn table(shared: &Shared, name: &str) -> TableId {
    shared.create_table(name, 2, &[]).unwrap().id
}

#[test]
fn single_node_crud_roundtrip() {
    let (shared, engines) = cluster(1);
    let t = table(&shared, "t");
    let node = &engines[0];

    let mut txn = node.begin().unwrap();
    txn.insert(t, 1, v(&[10, 0])).unwrap();
    txn.insert(t, 2, v(&[20, 0])).unwrap();
    assert_eq!(txn.get(t, 1).unwrap(), Some(v(&[10, 0])));
    txn.commit().unwrap();

    let mut txn = node.begin().unwrap();
    assert_eq!(txn.get(t, 2).unwrap(), Some(v(&[20, 0])));
    txn.update(t, 2, v(&[21, 0])).unwrap();
    txn.delete(t, 1).unwrap();
    txn.commit().unwrap();

    let mut txn = node.begin().unwrap();
    assert_eq!(txn.get(t, 1).unwrap(), None, "deleted row invisible");
    assert_eq!(txn.get(t, 2).unwrap(), Some(v(&[21, 0])));
    assert_eq!(txn.get(t, 99).unwrap(), None);
    txn.commit().unwrap();
}

#[test]
fn duplicate_and_missing_key_errors() {
    let (shared, engines) = cluster(1);
    let t = table(&shared, "t");
    let mut txn = engines[0].begin().unwrap();
    txn.insert(t, 1, v(&[1, 1])).unwrap();
    assert!(matches!(
        txn.insert(t, 1, v(&[2, 2])),
        Err(PmpError::DuplicateKey)
    ));
    assert!(matches!(
        txn.update(t, 42, v(&[0, 0])),
        Err(PmpError::KeyNotFound)
    ));
    assert!(matches!(txn.delete(t, 42), Err(PmpError::KeyNotFound)));
    // Row-level errors leave the transaction usable.
    txn.insert(t, 2, v(&[2, 2])).unwrap();
    txn.commit().unwrap();
}

#[test]
fn inserts_split_pages_and_scan_sees_all() {
    let (shared, engines) = cluster(1);
    let t = table(&shared, "t");
    let node = &engines[0];
    // Default leaf capacity is 64; 1000 keys force multi-level splits.
    let mut txn = node.begin().unwrap();
    for k in (0..1000u64).rev() {
        txn.insert(t, k, v(&[k, k * 2])).unwrap();
    }
    txn.commit().unwrap();

    let mut txn = node.begin().unwrap();
    let rows = txn.scan(t, 0, 2000).unwrap();
    assert_eq!(rows.len(), 1000);
    for (i, (k, val)) in rows.iter().enumerate() {
        assert_eq!(*k, i as u64, "scan must be sorted and complete");
        assert_eq!(val.col(1), i as u64 * 2);
    }
    let mid = txn.scan(t, 500, 10).unwrap();
    assert_eq!(mid.len(), 10);
    assert_eq!(mid[0].0, 500);
    txn.commit().unwrap();
}

#[test]
fn rollback_restores_previous_state() {
    let (shared, engines) = cluster(1);
    let t = table(&shared, "t");
    let node = &engines[0];

    let mut txn = node.begin().unwrap();
    txn.insert(t, 1, v(&[1, 1])).unwrap();
    txn.commit().unwrap();

    let mut txn = node.begin().unwrap();
    txn.update(t, 1, v(&[99, 99])).unwrap();
    txn.insert(t, 2, v(&[2, 2])).unwrap();
    txn.delete(t, 1).unwrap();
    txn.rollback().unwrap();

    let mut txn = node.begin().unwrap();
    assert_eq!(txn.get(t, 1).unwrap(), Some(v(&[1, 1])));
    assert_eq!(txn.get(t, 2).unwrap(), None, "rolled-back insert vanishes");
    txn.commit().unwrap();
}

#[test]
fn dropping_active_txn_rolls_back() {
    let (shared, engines) = cluster(1);
    let t = table(&shared, "t");
    {
        let mut txn = engines[0].begin().unwrap();
        txn.insert(t, 7, v(&[7, 7])).unwrap();
        // dropped without commit
    }
    let mut txn = engines[0].begin().unwrap();
    assert_eq!(txn.get(t, 7).unwrap(), None);
    txn.commit().unwrap();
}

#[test]
fn uncommitted_changes_invisible_across_nodes() {
    let (shared, engines) = cluster(2);
    let t = table(&shared, "t");
    let mut setup = engines[0].begin().unwrap();
    setup.insert(t, 1, v(&[1, 0])).unwrap();
    setup.commit().unwrap();

    let mut writer = engines[0].begin().unwrap();
    writer.update(t, 1, v(&[2, 0])).unwrap();

    // Node 2 must still see the committed version (via undo + TIT).
    let mut reader = engines[1].begin().unwrap();
    assert_eq!(reader.get(t, 1).unwrap(), Some(v(&[1, 0])));
    reader.commit().unwrap();

    writer.commit().unwrap();
    let mut reader = engines[1].begin().unwrap();
    assert_eq!(reader.get(t, 1).unwrap(), Some(v(&[2, 0])));
    reader.commit().unwrap();
}

#[test]
fn cross_node_writes_transfer_through_buffer_fusion() {
    let (shared, engines) = cluster(2);
    let t = table(&shared, "t");
    // Node 0 creates the rows.
    let mut txn = engines[0].begin().unwrap();
    for k in 0..100 {
        txn.insert(t, k, v(&[k, 0])).unwrap();
    }
    txn.commit().unwrap();

    // Nodes alternate updates on the same rows; each must see the other's
    // latest committed value.
    for round in 1..=4u64 {
        let node = &engines[(round % 2) as usize];
        let mut txn = node.begin().unwrap();
        for k in 0..100 {
            let cur = txn.get(t, k).unwrap().unwrap();
            assert_eq!(cur.col(1), round - 1, "round {round} key {k}");
            txn.update(t, k, v(&[k, round])).unwrap();
        }
        txn.commit().unwrap();
    }
    // Page movements must have used the DBP, not storage re-reads.
    assert!(shared.pmfs.buffer.stats().pushes.get() > 0);
    assert!(
        engines[1].stats.pages_loaded_dbp.get() > 0,
        "node 1 must have fetched pages from the DBP"
    );
}

#[test]
fn row_conflict_waits_for_commit() {
    let (shared, engines) = cluster(2);
    let t = table(&shared, "t");
    let mut setup = engines[0].begin().unwrap();
    setup.insert(t, 1, v(&[0, 0])).unwrap();
    setup.commit().unwrap();

    let mut t1 = engines[0].begin().unwrap();
    t1.update(t, 1, v(&[1, 0])).unwrap();

    let e1 = Arc::clone(&engines[1]);
    let waiter = std::thread::spawn(move || {
        let mut t2 = e1.begin().unwrap();
        t2.update(t, 1, v(&[2, 0])).unwrap();
        t2.commit().unwrap();
    });
    std::thread::sleep(Duration::from_millis(100));
    assert!(!waiter.is_finished(), "t2 must be blocked on t1's row lock");
    t1.commit().unwrap();
    waiter.join().unwrap();

    let mut check = engines[0].begin().unwrap();
    assert_eq!(check.get(t, 1).unwrap(), Some(v(&[2, 0])));
    check.commit().unwrap();
}

#[test]
fn deadlock_is_detected_and_victim_aborted() {
    let (shared, engines) = cluster(2);
    let t = table(&shared, "t");
    let mut setup = engines[0].begin().unwrap();
    setup.insert(t, 1, v(&[0, 0])).unwrap();
    setup.insert(t, 2, v(&[0, 0])).unwrap();
    setup.commit().unwrap();

    // Background detector (the cluster crate owns this in production).
    let rlock = Arc::clone(&shared.pmfs.rlock);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let detector = std::thread::spawn(move || {
        while !stop2.load(std::sync::atomic::Ordering::Acquire) {
            rlock.detect_once();
            std::thread::sleep(Duration::from_millis(5));
        }
    });

    let barrier = Arc::new(std::sync::Barrier::new(2));
    let mut handles = Vec::new();
    for (i, (first, second)) in [(1u64, 2u64), (2, 1)].iter().enumerate() {
        let engine = Arc::clone(&engines[i]);
        let barrier = Arc::clone(&barrier);
        let (first, second) = (*first, *second);
        handles.push(std::thread::spawn(move || {
            let mut txn = engine.begin().unwrap();
            txn.update(t, first, v(&[first, 0])).unwrap();
            barrier.wait();
            match txn.update(t, second, v(&[second, 0])) {
                Ok(()) => {
                    txn.commit().unwrap();
                    Ok(())
                }
                Err(e) => Err(e),
            }
        }));
    }
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    stop.store(true, std::sync::atomic::Ordering::Release);
    detector.join().unwrap();

    let oks = results.iter().filter(|r| r.is_ok()).count();
    let deadlocks = results
        .iter()
        .filter(|r| matches!(r, Err(PmpError::Deadlock { .. })))
        .count();
    assert_eq!(oks, 1, "exactly one transaction survives: {results:?}");
    assert_eq!(deadlocks, 1, "exactly one deadlock victim: {results:?}");
}

#[test]
fn single_node_crash_recovery_preserves_committed_and_rolls_back_rest() {
    let (shared, engines) = cluster(2);
    let t = table(&shared, "t");

    let mut committed = engines[0].begin().unwrap();
    for k in 0..50 {
        committed.insert(t, k, v(&[k, 1])).unwrap();
    }
    committed.commit().unwrap();

    // An uncommitted transaction is in flight at crash time.
    let mut doomed = engines[0].begin().unwrap();
    doomed.update(t, 5, v(&[5, 999])).unwrap();
    doomed.insert(t, 100, v(&[100, 999])).unwrap();
    std::mem::forget(doomed); // crash takes it down, no clean rollback
                              // Make the in-flight changes reach the durable log + DBP (as a busy
                              // node's background flusher would) so recovery has work to undo.
    engines[0].flush_tick();

    engines[0].crash();
    assert!(matches!(
        engines[0].begin().map(|_| ()),
        Err(PmpError::NodeUnavailable { .. })
    ));

    let (recovered, stats) = recover_node(&shared, NodeId(0)).unwrap();
    assert_eq!(
        stats.rolled_back, 1,
        "the in-flight trx must be rolled back"
    );
    assert!(stats.committed_seen >= 1);

    let mut check = recovered.begin().unwrap();
    for k in 0..50 {
        let expected = Some(v(&[k, 1]));
        assert_eq!(check.get(t, k).unwrap(), expected, "key {k}");
    }
    assert_eq!(check.get(t, 100).unwrap(), None, "uncommitted insert gone");
    check.commit().unwrap();

    // The survivor node sees the same state.
    let mut check = engines[1].begin().unwrap();
    assert_eq!(check.get(t, 5).unwrap(), Some(v(&[5, 1])));
    check.commit().unwrap();

    // And the recovered node accepts new writes.
    let mut txn = recovered.begin().unwrap();
    txn.insert(t, 200, v(&[200, 0])).unwrap();
    txn.commit().unwrap();
}

#[test]
fn survivor_node_unaffected_while_peer_is_down() {
    let (shared, engines) = cluster(2);
    let t0 = table(&shared, "t0");
    let t1 = table(&shared, "t1");

    // Each node works on its own table (the Fig 15 setup).
    let mut a = engines[0].begin().unwrap();
    a.insert(t0, 1, v(&[1, 1])).unwrap();
    a.commit().unwrap();
    let mut b = engines[1].begin().unwrap();
    b.insert(t1, 1, v(&[1, 1])).unwrap();
    b.commit().unwrap();

    engines[0].crash();

    // Node 1 keeps transacting on its disjoint tables.
    for k in 2..20 {
        let mut txn = engines[1].begin().unwrap();
        txn.insert(t1, k, v(&[k, k])).unwrap();
        txn.commit().unwrap();
    }
    let (recovered, _) = recover_node(&shared, NodeId(0)).unwrap();
    let mut check = recovered.begin().unwrap();
    assert_eq!(check.get(t0, 1).unwrap(), Some(v(&[1, 1])));
    assert_eq!(check.get(t1, 19).unwrap(), Some(v(&[19, 19])));
    check.commit().unwrap();
}

#[test]
fn full_cluster_recovery_rebuilds_from_logs_alone() {
    let (shared, engines) = cluster(2);
    let t = table(&shared, "t");

    let mut txn = engines[0].begin().unwrap();
    for k in 0..200 {
        txn.insert(t, k, v(&[k, 0])).unwrap();
    }
    txn.commit().unwrap();
    let mut txn = engines[1].begin().unwrap();
    for k in 0..200 {
        txn.update(t, k, v(&[k, 7])).unwrap();
    }
    txn.commit().unwrap();
    // One in-doubt transaction on node 0.
    let mut doomed = engines[0].begin().unwrap();
    doomed.update(t, 3, v(&[3, 666])).unwrap();
    std::mem::forget(doomed);
    engines[0].flush_tick();

    // Everything volatile dies: nodes, DBP, undo store.
    engines[0].crash();
    engines[1].crash();
    shared.pmfs.buffer.clear();
    shared.undo.clear();
    shared.pmfs.plock.release_all(NodeId(0));
    shared.pmfs.plock.release_all(NodeId(1));
    shared.pmfs.txn.unregister_region(NodeId(0));
    shared.pmfs.txn.unregister_region(NodeId(1));

    let stats = recover_cluster(&shared, &[NodeId(0), NodeId(1)]).unwrap();
    assert!(stats.records_scanned > 0);
    assert_eq!(stats.rolled_back, 1);

    let fresh = NodeEngine::start(Arc::clone(&shared), NodeId(0));
    let mut check = fresh.begin().unwrap();
    for k in 0..200 {
        assert_eq!(check.get(t, k).unwrap(), Some(v(&[k, 7])), "key {k}");
    }
    check.commit().unwrap();
}

#[test]
fn gsi_maintained_across_insert_update_delete() {
    let (shared, engines) = cluster(1);
    let meta = shared.create_table("orders", 3, &[1]).unwrap();
    let t = meta.id;
    let node = &engines[0];

    let mut txn = node.begin().unwrap();
    txn.insert(t, 1, v(&[1, 100, 0])).unwrap();
    txn.insert(t, 2, v(&[2, 100, 0])).unwrap();
    txn.insert(t, 3, v(&[3, 200, 0])).unwrap();
    txn.commit().unwrap();

    let mut txn = node.begin().unwrap();
    let mut hits = txn.index_lookup(t, 0, 100, 10).unwrap();
    hits.sort();
    assert_eq!(hits, vec![1, 2]);

    // Move pk 2 from bucket 100 to 200.
    txn.update(t, 2, v(&[2, 200, 0])).unwrap();
    txn.commit().unwrap();

    let mut txn = node.begin().unwrap();
    assert_eq!(txn.index_lookup(t, 0, 100, 10).unwrap(), vec![1]);
    let mut hits = txn.index_lookup(t, 0, 200, 10).unwrap();
    hits.sort();
    assert_eq!(hits, vec![2, 3]);

    txn.delete(t, 3).unwrap();
    txn.commit().unwrap();
    let mut txn = node.begin().unwrap();
    assert_eq!(txn.index_lookup(t, 0, 200, 10).unwrap(), vec![2]);
    txn.commit().unwrap();
}

#[test]
fn concurrent_disjoint_writers_scale_without_errors() {
    let (shared, engines) = cluster(4);
    let t = table(&shared, "t");
    let mut setup = engines[0].begin().unwrap();
    for k in 0..400 {
        setup.insert(t, k, v(&[k, 0])).unwrap();
    }
    setup.commit().unwrap();

    let handles: Vec<_> = engines
        .iter()
        .enumerate()
        .map(|(i, engine)| {
            let engine = Arc::clone(engine);
            std::thread::spawn(move || {
                for round in 1..=20u64 {
                    let mut txn = engine.begin().unwrap();
                    for k in (i as u64 * 100)..(i as u64 * 100 + 100) {
                        txn.update(t, k, v(&[k, round])).unwrap();
                    }
                    txn.commit().unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut check = engines[0].begin().unwrap();
    for k in 0..400 {
        assert_eq!(check.get(t, k).unwrap(), Some(v(&[k, 20])), "key {k}");
    }
    check.commit().unwrap();
}
