//! Model-checked core of the PMFS replication protocol (DESIGN.md §15):
//! a replicated write fanning a `(value, tag)` pair to the replica slots,
//! racing a fast single-replica read.
//!
//! `pmp-repl` guards every replica slot with a seqlock: the writer bumps the
//! slot's sequence word to an odd value, stores the payload and the version
//! tag, then bumps the sequence back to even. A single-replica read validates
//! that the sequence was even and unchanged around the payload load, and
//! falls back to a majority read otherwise.
//!
//! The buggy variant models the tempting shortcut: validate by version tag
//! alone and skip the sequence word. The tag is published *after* the
//! payload, so a reader that loads the tag first, gets preempted inside the
//! writer's torn window (`sched_point("repl.torn-window")`), and then loads
//! the payload observes a fresh value under a stale tag — a torn replicated
//! write visible to a single-replica read.
//!
//! Ghost invariant: a validated read must observe `value == tag * 100`.

#![cfg(feature = "model")]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pmp_model::{
    render_trace, replay, sched_point, spawn, Explorer, Failure, Mode, DEFAULT_MAX_STEPS,
};

/// One replica slot of a replicated cell, exactly the triple `pmp-repl`
/// keeps per replica: seqlock word, version tag, payload.
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    tag: AtomicU64,
    value: AtomicU64,
}

impl Slot {
    fn seeded(tag: u64, value: u64) -> Slot {
        let s = Slot::default();
        s.tag.store(tag, Ordering::SeqCst);
        s.value.store(value, Ordering::SeqCst);
        s
    }
}

/// Replicated write of `(tag = 2, value = 200)` over the initial state
/// `(tag = 1, value = 100)`, racing one single-replica read of replica 0.
///
/// `fixed = true` validates the read with the seqlock discipline the real
/// facade uses; `fixed = false` validates by tag alone.
fn scenario(fixed: bool) {
    let slots: Arc<[Slot; 2]> = Arc::new([Slot::seeded(1, 100), Slot::seeded(1, 100)]);

    {
        let slots = Arc::clone(&slots);
        spawn("writer", move || {
            // Fan the write to every replica, slot 0 first. Only slot 0 is
            // instrumented — the reader never looks at slot 1, so extra
            // sched points there would just widen the exhaustive tree.
            let s = &slots[0];
            s.seq.store(1, Ordering::SeqCst);
            sched_point("repl.write.seq-odd");
            s.value.store(200, Ordering::SeqCst);
            sched_point("repl.torn-window");
            s.tag.store(2, Ordering::SeqCst);
            sched_point("repl.write.tag-published");
            s.seq.store(2, Ordering::SeqCst);

            let s = &slots[1];
            s.seq.store(1, Ordering::SeqCst);
            s.value.store(200, Ordering::SeqCst);
            s.tag.store(2, Ordering::SeqCst);
            s.seq.store(2, Ordering::SeqCst);
        });
    }

    {
        let slots = Arc::clone(&slots);
        spawn("reader", move || {
            let s = &slots[0];
            if fixed {
                // Seqlock validation: only trust the payload when the
                // sequence word was even and unchanged around the loads.
                // On failure the real facade retries via a majority read;
                // declining to assert models that fallback, and is what
                // makes every interleaving safe.
                let s0 = s.seq.load(Ordering::SeqCst);
                sched_point("repl.read.seq-begin");
                let v = s.value.load(Ordering::SeqCst);
                sched_point("repl.read.value");
                let t = s.tag.load(Ordering::SeqCst);
                sched_point("repl.read.tag");
                let s1 = s.seq.load(Ordering::SeqCst);
                if s0 == s1 && s0 % 2 == 0 {
                    assert_eq!(v, t * 100, "seqlock-validated read observed a torn write");
                }
            } else {
                // Buggy shortcut: the tag doubles as the validator. Loading
                // the tag before the payload leaves a window where a fresh
                // payload lands under the stale tag.
                let t = s.tag.load(Ordering::SeqCst);
                sched_point("repl.read.tag-only");
                let v = s.value.load(Ordering::SeqCst);
                assert_eq!(
                    v,
                    t * 100,
                    "torn replicated write visible to single-replica read"
                );
            }
        });
    }
}

/// Minimized failing schedule for the buggy (tag-only) variant, produced
/// via `pmp_model::minimize`. Verified by `checked_in_seed_reproduces_torn_read`:
/// replaying it against `scenario(false)` panics with the torn-write
/// assertion, and the same bytes against `scenario(true)` complete cleanly.
const REPLAY_SEED: &[u8] = &[1];

#[test]
fn seqlock_read_survives_random_sweep() {
    let expl = Explorer::new(Mode::Random {
        seed: 0x9e97,
        schedules: 200,
    });
    let out = expl.explore(|| scenario(true));
    assert!(
        out.failure.is_none(),
        "fixed replicated-write/read protocol failed:\n{}",
        render_trace(&out.failure.unwrap().result)
    );
}

#[test]
fn seqlock_read_survives_exhaustive_exploration() {
    let expl = Explorer::new(Mode::Exhaustive {
        max_schedules: 20_000,
    });
    let out = expl.explore(|| scenario(true));
    assert!(out.failure.is_none());
    assert!(out.complete, "tree fully enumerated ({})", out.schedules);
}

#[test]
fn tag_only_validation_reads_torn_write() {
    for mode in [
        Mode::Random {
            seed: 7,
            schedules: 300,
        },
        Mode::Pct {
            seed: 7,
            depth: 2,
            schedules: 300,
        },
        Mode::Exhaustive {
            max_schedules: 20_000,
        },
    ] {
        let out = Explorer::new(mode.clone()).explore(|| scenario(false));
        let found = out
            .failure
            .unwrap_or_else(|| panic!("{mode:?} must catch the torn read"));
        match &found.result.failure {
            Some(Failure::Panic { message, .. }) => {
                assert!(message.contains("torn replicated write"), "got: {message}")
            }
            other => panic!("expected the torn-read assert, got {other:?}"),
        }
        // And the failing schedule replays deterministically.
        let res = replay(&found.schedule, DEFAULT_MAX_STEPS, || scenario(false));
        assert!(matches!(res.failure, Some(Failure::Panic { .. })));
    }
}

#[test]
fn checked_in_seed_reproduces_torn_read() {
    // Buggy variant: the pinned schedule panics on the ghost invariant.
    let res = replay(REPLAY_SEED, DEFAULT_MAX_STEPS, || scenario(false));
    match &res.failure {
        Some(Failure::Panic { message, .. }) => assert!(
            message.contains("torn replicated write"),
            "unexpected failure: {message}"
        ),
        other => panic!("pinned seed no longer reproduces the torn read: {other:?}"),
    }

    // Fixed variant: the very same schedule completes cleanly.
    let res = replay(REPLAY_SEED, DEFAULT_MAX_STEPS, || scenario(true));
    assert!(
        res.failure.is_none(),
        "seqlock validation must survive the pinned schedule: {:?}",
        res.failure
    );
}

#[test]
#[ignore = "longer randomized sweep; run explicitly with --ignored"]
fn long_randomized_sweep() {
    let expl = Explorer::new(Mode::Random {
        seed: 0xabcd,
        schedules: 20_000,
    });
    assert!(expl.explore(|| scenario(true)).failure.is_none());
}
