//! Scenario: PLock lazy unref vs a stronger-mode waiter (PR 7 regression).
//!
//! The historical bug: a waiter for a stronger mode sampled the holder's
//! refcount on an unlocked fast path, decided it had to wait, and only then
//! registered itself under the shard lock — without re-checking. The
//! refcount-to-zero edge (and its notify) could land inside that window, so
//! the notify found no registered waiter and the waiter slept forever. The
//! fix re-checks the wait condition under the same lock the condvar is
//! paired with (the standard `while`-loop discipline).
//!
//! A lost wake shows up in the model as a [`Failure::Deadlock`]: the waiter
//! is blocked on the condvar with no timeout and nothing else can run.

#![cfg(feature = "model")]

use pmp_common::sync::{LockClass, TrackedCondvar, TrackedMutex};
use pmp_model::{
    render_trace, replay, sched_point, spawn, Explorer, Failure, Mode, DEFAULT_MAX_STEPS,
};
use std::sync::Arc;

const SHARD: LockClass = LockClass::new("model.plock.shard");

struct Shard {
    /// Holders of the current (weaker) mode.
    refcount: u32,
    /// Waiters registered for a stronger mode.
    waiting: u32,
}

/// Minimized failing schedule for the buggy (pre-fix) fast path, produced
/// by `buggy_variant_fails_and_replay_seed_is_minimal` via `minimize()`.
/// Verified: replaying it against `scenario(false)` deadlocks (the lost
/// refcount-to-zero wake), and the same seed against `scenario(true)`
/// completes cleanly — i.e. it fails exactly when the fix is reverted.
const REPLAY_SEED: &[u8] = &[1, 1];

fn scenario(fixed: bool) {
    let shard = Arc::new(TrackedMutex::new(
        SHARD,
        Shard {
            refcount: 1,
            waiting: 0,
        },
    ));
    let cv = Arc::new(TrackedCondvar::new());

    // The current holder releases its reference; the refcount-to-zero edge
    // notifies stronger-mode waiters.
    {
        let shard = Arc::clone(&shard);
        let cv = Arc::clone(&cv);
        spawn("holder", move || {
            let mut g = shard.lock();
            g.refcount -= 1;
            if g.refcount == 0 {
                cv.notify_all();
            }
        });
    }

    {
        let shard = Arc::clone(&shard);
        let cv = Arc::clone(&cv);
        spawn("waiter", move || {
            if fixed {
                // Fixed: check-and-wait under one guard, re-checked in a
                // loop after every wake.
                let mut g = shard.lock();
                g.waiting += 1;
                while g.refcount > 0 {
                    cv.wait(&mut g);
                }
                g.waiting -= 1;
                g.refcount = 1; // acquire the stronger mode
            } else {
                // Buggy: unlocked fast-path sample, then register and wait
                // without re-checking. The refcount-to-zero notify can land
                // in the window between the sample and the wait.
                let busy = shard.lock().refcount > 0;
                if busy {
                    sched_point("plock.wait-window");
                    let mut g = shard.lock();
                    g.waiting += 1;
                    cv.wait(&mut g);
                    g.waiting -= 1;
                }
                shard.lock().refcount = 1;
            }
        });
    }
}

#[test]
fn fixed_wait_loop_survives_random_sweep() {
    let expl = Explorer::new(Mode::Random {
        seed: 0x910c,
        schedules: 200,
    });
    let out = expl.explore(|| scenario(true));
    assert!(
        out.failure.is_none(),
        "fixed wait loop must not lose the refcount-to-zero wake:\n{}",
        render_trace(&out.failure.unwrap().result)
    );
}

#[test]
fn fixed_wait_loop_survives_exhaustive_exploration() {
    let expl = Explorer::new(Mode::Exhaustive {
        max_schedules: 20_000,
    });
    let out = expl.explore(|| scenario(true));
    assert!(out.failure.is_none());
    assert!(out.complete, "tree fully enumerated ({})", out.schedules);
}

#[test]
fn buggy_variant_fails_and_replay_seed_is_minimal() {
    for mode in [
        Mode::Random {
            seed: 2,
            schedules: 300,
        },
        Mode::Pct {
            seed: 2,
            depth: 2,
            schedules: 300,
        },
        Mode::Exhaustive {
            max_schedules: 20_000,
        },
    ] {
        let out = Explorer::new(mode.clone()).explore(|| scenario(false));
        let found = out
            .failure
            .unwrap_or_else(|| panic!("{mode:?} must find the lost wake"));
        assert!(
            matches!(found.result.failure, Some(Failure::Deadlock { .. })),
            "expected a deadlock, got:\n{}",
            render_trace(&found.result)
        );
    }
}

#[test]
fn checked_in_seed_reproduces_pr7_race() {
    let res = replay(REPLAY_SEED, DEFAULT_MAX_STEPS, || scenario(false));
    match &res.failure {
        Some(Failure::Deadlock { blocked }) => {
            assert!(
                blocked.iter().any(|b| b.contains("waiter")),
                "deadlock does not involve the waiter: {blocked:?}"
            );
        }
        other => panic!(
            "replay seed lost the race (failure={other:?}):\n{}",
            render_trace(&res)
        ),
    }
    let res = replay(REPLAY_SEED, DEFAULT_MAX_STEPS, || scenario(true));
    assert!(res.failure.is_none());
}

#[test]
#[ignore = "longer randomized sweep; run explicitly with --ignored"]
fn long_randomized_sweep() {
    let expl = Explorer::new(Mode::Random {
        seed: 0x91ee,
        schedules: 20_000,
    });
    assert!(expl.explore(|| scenario(true)).failure.is_none());
}
