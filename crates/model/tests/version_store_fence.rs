//! Scenario: version-store push fence vs a warmed-chain reader.
//!
//! Models the DBP refresh path from `engine/node.rs` / `version_store.rs`:
//! when a node adopts a newer page image (say CTS 30), every remote version
//! older than the new image but newer than the local chain head (here CTS
//! 20) must be pushed into the local version chain *before* the image is
//! published as fresh. Otherwise a local snapshot reader between the two
//! CTSes (snapshot 25) rejects the too-new image, walks the chain, and
//! silently reads a stale version (CTS 10) — a lost-update anomaly, not a
//! crash.
//!
//! Buggy variant: adopt-then-fence, with `sched_point("dbp.adopt-window")`
//! marking the historical window. Fixed variant: fence-then-adopt.

#![cfg(feature = "model")]

use pmp_common::sync::{LockClass, TrackedMutex};
use pmp_model::{
    render_trace, replay, sched_point, spawn, Explorer, Failure, Mode, DEFAULT_MAX_STEPS,
};
use std::sync::Arc;

const FRAME: LockClass = LockClass::new("model.dbp.frame");
const CHAIN: LockClass = LockClass::new("model.dbp.chain");

struct Frame {
    image: &'static str,
    cts: u64,
    /// Published: readers may trust frame+chain as a complete history.
    fresh: bool,
}

/// Newest-first (cts, payload) version chain.
type Chain = Vec<(u64, &'static str)>;

const SNAPSHOT: u64 = 25;

fn read_at(
    frame: &TrackedMutex<Frame>,
    chain: &TrackedMutex<Chain>,
    read_ts: u64,
) -> Option<&'static str> {
    let f = frame.lock();
    if !f.fresh {
        // Not yet warmed; the real engine would fetch remotely. Out of
        // scope here — the invariant under test is about the fresh state.
        return None;
    }
    if f.cts <= read_ts {
        return Some(f.image);
    }
    drop(f);
    chain
        .lock()
        .iter()
        .find(|&&(cts, _)| cts <= read_ts)
        .map(|&(_, v)| v)
}

fn scenario(fixed: bool) {
    // Local chain knows v1@10; v2@20 exists remotely; the refresh adopts
    // v3@30 and must fence v2 into the chain first.
    let frame = Arc::new(TrackedMutex::new(
        FRAME,
        Frame {
            image: "v1",
            cts: 10,
            fresh: false,
        },
    ));
    let chain: Arc<TrackedMutex<Chain>> = Arc::new(TrackedMutex::new(CHAIN, vec![(10, "v1")]));

    {
        let frame = Arc::clone(&frame);
        let chain = Arc::clone(&chain);
        spawn("refresher", move || {
            if fixed {
                // Fence first: the intermediate version is reachable
                // before the image is published.
                chain.lock().insert(0, (20, "v2"));
                let mut f = frame.lock();
                f.image = "v3";
                f.cts = 30;
                f.fresh = true;
            } else {
                // Buggy: publish the image, then backfill the chain.
                {
                    let mut f = frame.lock();
                    f.image = "v3";
                    f.cts = 30;
                    f.fresh = true;
                }
                sched_point("dbp.adopt-window");
                chain.lock().insert(0, (20, "v2"));
            }
        });
    }

    {
        let frame = Arc::clone(&frame);
        let chain = Arc::clone(&chain);
        spawn("reader", move || {
            if let Some(v) = read_at(&frame, &chain, SNAPSHOT) {
                assert_eq!(
                    v, "v2",
                    "snapshot {SNAPSHOT} read a stale version: fence incomplete"
                );
            }
        });
    }
}

#[test]
fn fence_then_adopt_survives_random_sweep() {
    let expl = Explorer::new(Mode::Random {
        seed: 0xfe0,
        schedules: 200,
    });
    let out = expl.explore(|| scenario(true));
    assert!(
        out.failure.is_none(),
        "fence-then-adopt must keep snapshot reads exact:\n{}",
        render_trace(&out.failure.unwrap().result)
    );
}

#[test]
fn fence_then_adopt_survives_exhaustive_exploration() {
    let expl = Explorer::new(Mode::Exhaustive {
        max_schedules: 20_000,
    });
    let out = expl.explore(|| scenario(true));
    assert!(out.failure.is_none());
    assert!(out.complete, "tree fully enumerated ({})", out.schedules);
}

#[test]
fn adopt_then_fence_serves_stale_snapshot() {
    for mode in [
        Mode::Random {
            seed: 4,
            schedules: 300,
        },
        Mode::Exhaustive {
            max_schedules: 20_000,
        },
    ] {
        let out = Explorer::new(mode.clone()).explore(|| scenario(false));
        let found = out
            .failure
            .unwrap_or_else(|| panic!("{mode:?} must catch the stale read"));
        match &found.result.failure {
            Some(Failure::Panic { message, .. }) => {
                assert!(message.contains("stale version"), "got: {message}")
            }
            other => panic!("expected the stale-read assert, got {other:?}"),
        }
        // And the failing schedule replays.
        let res = replay(&found.schedule, DEFAULT_MAX_STEPS, || scenario(false));
        assert!(matches!(res.failure, Some(Failure::Panic { .. })));
    }
}

#[test]
#[ignore = "longer randomized sweep; run explicitly with --ignored"]
fn long_randomized_sweep() {
    let expl = Explorer::new(Mode::Random {
        seed: 0xfeff,
        schedules: 20_000,
    });
    assert!(expl.explore(|| scenario(true)).failure.is_none());
}
