//! Scenario: B-link node split vs a same-node reader (PR 7 regression).
//!
//! The historical bug: the split writer published the left node's sibling
//! pointer (`next`) and released the node latch *before* installing the new
//! right node in the page table. A reader that followed `next` in that
//! window chased a dangling sibling. The fix installs the sibling in the
//! table while still holding the left-node latch.
//!
//! The buggy variant here is the pre-fix ordering with the historical race
//! window marked by `sched_point("blink.install-window")`; the checked-in
//! replay seed reproduces the dangle deterministically (satellite: PR 7
//! regression schedule).

#![cfg(feature = "model")]

use pmp_common::sync::{LockClass, TrackedMutex};
use pmp_model::{
    render_trace, replay, sched_point, spawn, Explorer, Failure, Mode, DEFAULT_MAX_STEPS,
};
use std::collections::HashMap;
use std::sync::Arc;

const LEFT: LockClass = LockClass::new("model.blink.left");
const TABLE: LockClass = LockClass::new("model.blink.table");

const RIGHT_PAGE: u32 = 2;

struct LeftNode {
    next: Option<u32>,
}

/// Minimized failing schedule for the buggy (pre-fix) ordering, produced by
/// `buggy_variant_fails_and_replay_seed_is_minimal` via `minimize()`.
/// Verified: replaying it against `scenario(false)` panics with the dangling
/// sibling assert, and the same seed against `scenario(true)` (the fixed
/// ordering) completes cleanly — i.e. it fails exactly when the fix is
/// reverted.
const REPLAY_SEED: &[u8] = &[0, 0, 1, 1, 1];

fn scenario(fixed: bool) {
    let left = Arc::new(TrackedMutex::new(LEFT, LeftNode { next: None }));
    let table = Arc::new(TrackedMutex::new(TABLE, HashMap::<u32, ()>::new()));

    {
        let left = Arc::clone(&left);
        let table = Arc::clone(&table);
        spawn("splitter", move || {
            if fixed {
                // Fixed ordering: the sibling is reachable from the page
                // table before anyone can observe the pointer to it.
                let mut l = left.lock();
                table.lock().insert(RIGHT_PAGE, ());
                l.next = Some(RIGHT_PAGE);
            } else {
                // Buggy ordering: pointer published and latch released
                // first, table install second.
                {
                    let mut l = left.lock();
                    l.next = Some(RIGHT_PAGE);
                }
                sched_point("blink.install-window");
                table.lock().insert(RIGHT_PAGE, ());
            }
        });
    }

    {
        let left = Arc::clone(&left);
        let table = Arc::clone(&table);
        spawn("reader", move || {
            let next = left.lock().next;
            if let Some(page) = next {
                assert!(
                    table.lock().contains_key(&page),
                    "b-link sibling pointer dangles: next={page} not in page table"
                );
            }
        });
    }
}

#[test]
fn fixed_ordering_survives_random_sweep() {
    let expl = Explorer::new(Mode::Random {
        seed: 0xb11c,
        schedules: 200,
    });
    let out = expl.explore(|| scenario(true));
    assert!(
        out.failure.is_none(),
        "fixed split ordering must not dangle:\n{}",
        render_trace(&out.failure.unwrap().result)
    );
}

#[test]
fn fixed_ordering_survives_exhaustive_exploration() {
    let expl = Explorer::new(Mode::Exhaustive {
        max_schedules: 20_000,
    });
    let out = expl.explore(|| scenario(true));
    assert!(out.failure.is_none());
    assert!(
        out.complete,
        "schedule tree should be fully enumerable ({} schedules)",
        out.schedules
    );
}

#[test]
fn buggy_variant_fails_and_replay_seed_is_minimal() {
    // All three strategies must find the dangle.
    for mode in [
        Mode::Random {
            seed: 1,
            schedules: 300,
        },
        Mode::Pct {
            seed: 1,
            depth: 2,
            schedules: 300,
        },
        Mode::Exhaustive {
            max_schedules: 20_000,
        },
    ] {
        let out = Explorer::new(mode.clone()).explore(|| scenario(false));
        let found = out
            .failure
            .unwrap_or_else(|| panic!("{mode:?} must find the dangling sibling"));
        assert!(matches!(found.result.failure, Some(Failure::Panic { .. })));
    }
}

#[test]
fn checked_in_seed_reproduces_pr7_race() {
    let res = replay(REPLAY_SEED, DEFAULT_MAX_STEPS, || scenario(false));
    match &res.failure {
        Some(Failure::Panic { message, .. }) => {
            assert!(
                message.contains("sibling pointer dangles"),
                "unexpected panic: {message}"
            );
        }
        other => panic!(
            "replay seed lost the race (failure={other:?}):\n{}",
            render_trace(&res)
        ),
    }
    // The same schedule against the fixed ordering is clean.
    let res = replay(REPLAY_SEED, DEFAULT_MAX_STEPS, || scenario(true));
    assert!(res.failure.is_none());
}

#[test]
#[ignore = "longer randomized sweep; run explicitly with --ignored"]
fn long_randomized_sweep() {
    let expl = Explorer::new(Mode::Random {
        seed: 0xdeb1,
        schedules: 20_000,
    });
    assert!(expl.explore(|| scenario(true)).failure.is_none());
}
