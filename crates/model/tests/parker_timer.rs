//! Scenario: scheduler park/wake vs the deadline-timer backstop at stop().
//!
//! Models `engine/scheduler.rs`: a parked task's only wake source is a
//! deadline timer armed via `park_deadline`, while another thread runs
//! `Scheduler::stop` (set `stopped`, wake the timer thread, join it, drain
//! stragglers).
//!
//! The pre-fix engine checked `stopped` *outside* the timer-heap lock, so
//! the interleaving
//!
//! 1. `park_deadline` samples `stopped == false`,
//! 2. `stop` sets `stopped`, the timer thread drains an empty heap and
//!    exits, `stop` joins it and returns,
//! 3. `park_deadline` pushes into the now-dead heap,
//!
//! leaves the parked task waiting on a timer that can never fire — the
//! model reports it as a [`Failure::Deadlock`]. The fix (this PR, in
//! `engine/scheduler.rs`) re-checks `stopped` under the heap lock and has
//! `stop` drain-and-wake whatever is left after joining the timer thread;
//! the fixed variant here mirrors both halves.

#![cfg(feature = "model")]

use pmp_common::sync::{LockClass, TrackedCondvar, TrackedMutex};
use pmp_model::{
    render_trace, replay, sched_point, spawn, Explorer, Failure, Mode, DEFAULT_MAX_STEPS,
};
use std::sync::Arc;

const TIMERS: LockClass = LockClass::new("model.sched.timers");
const PSTATE: LockClass = LockClass::new("model.sched.parker");

const EMPTY: u8 = 0;
const NOTIFIED: u8 = 2;

struct TimerState {
    stopped: bool,
    /// Armed backstop deadlines (parker ids; one parker here).
    heap: Vec<u32>,
    timer_exited: bool,
}

struct World {
    timers: TrackedMutex<TimerState>,
    timer_cv: TrackedCondvar,
    parker: TrackedMutex<u8>,
    parker_cv: TrackedCondvar,
}

fn wake(w: &World) {
    let mut s = w.parker.lock();
    *s = NOTIFIED;
    w.parker_cv.notify_all();
}

/// `Parker::park_deadline`. The deadline itself is far in the future; the
/// only in-model fire paths are the drains at stop time, which is exactly
/// the shutdown guarantee under test.
fn park_deadline(w: &World, fixed: bool) {
    if fixed {
        // Post-fix: decide under the same lock the drains hold.
        let mut t = w.timers.lock();
        if t.stopped {
            drop(t);
            wake(w);
        } else {
            t.heap.push(1);
            w.timer_cv.notify_all();
        }
    } else {
        // Pre-fix: `stopped` sampled outside the heap lock (the engine
        // used an atomic load), then the push — the historical window.
        let stopped = w.timers.lock().stopped;
        if !stopped {
            sched_point("parker.deadline-window");
            w.timers.lock().heap.push(1);
            w.timer_cv.notify_all();
        } else {
            wake(w);
        }
    }
}

fn scenario(fixed: bool) {
    let w = Arc::new(World {
        timers: TrackedMutex::new(
            TIMERS,
            TimerState {
                stopped: false,
                heap: Vec::new(),
                timer_exited: false,
            },
        ),
        timer_cv: TrackedCondvar::new(),
        parker: TrackedMutex::new(PSTATE, EMPTY),
        parker_cv: TrackedCondvar::new(),
    });

    // The parked task: its only wake source is the timer backstop.
    {
        let w = Arc::clone(&w);
        spawn("task", move || {
            let mut s = w.parker.lock();
            while *s != NOTIFIED {
                w.parker_cv.wait(&mut s);
            }
        });
    }

    {
        let w = Arc::clone(&w);
        spawn("deadline", move || park_deadline(&w, fixed));
    }

    // `SchedInner::timer_loop`: sleeps until stop (deadlines are distant),
    // then fires everything outstanding and exits.
    {
        let w = Arc::clone(&w);
        spawn("timer", move || {
            let due = {
                let mut t = w.timers.lock();
                while !t.stopped {
                    w.timer_cv.wait(&mut t);
                }
                let due = std::mem::take(&mut t.heap);
                t.timer_exited = true;
                w.timer_cv.notify_all();
                due
            };
            for _ in due {
                wake(&w);
            }
        });
    }

    // `Scheduler::stop`: flag, wake the timer thread, join it, and (fixed)
    // drain-and-wake whatever raced in after the timer thread's drain.
    {
        let w = Arc::clone(&w);
        spawn("stopper", move || {
            let due = {
                let mut t = w.timers.lock();
                t.stopped = true;
                w.timer_cv.notify_all();
                while !t.timer_exited {
                    w.timer_cv.wait(&mut t);
                }
                if fixed {
                    std::mem::take(&mut t.heap)
                } else {
                    Vec::new()
                }
            };
            for _ in due {
                wake(&w);
            }
        });
    }
}

#[test]
fn fixed_stop_survives_random_sweep() {
    let expl = Explorer::new(Mode::Random {
        seed: 0x5c4ed,
        schedules: 300,
    });
    let out = expl.explore(|| scenario(true));
    assert!(
        out.failure.is_none(),
        "fixed stop must leave no parked task behind:\n{}",
        render_trace(&out.failure.unwrap().result)
    );
}

#[test]
fn fixed_stop_survives_pct_sweep() {
    let expl = Explorer::new(Mode::Pct {
        seed: 0x5c4,
        depth: 3,
        schedules: 300,
    });
    assert!(expl.explore(|| scenario(true)).failure.is_none());
}

#[test]
fn prefix_stop_loses_the_backstop_wake() {
    let expl = Explorer::new(Mode::Random {
        seed: 0x5c5,
        schedules: 1_000,
    });
    let found = expl
        .explore(|| scenario(false))
        .failure
        .expect("pre-fix stop must strand the parked task");
    match &found.result.failure {
        Some(Failure::Deadlock { blocked }) => {
            assert!(
                blocked.iter().any(|b| b.contains("task")),
                "deadlock does not strand the task: {blocked:?}"
            );
        }
        other => panic!("expected a deadlock, got {other:?}"),
    }
    // Single-seed reproduction from the recorded schedule.
    let res = replay(&found.schedule, DEFAULT_MAX_STEPS, || scenario(false));
    assert!(
        matches!(res.failure, Some(Failure::Deadlock { .. })),
        "schedule did not replay:\n{}",
        render_trace(&res)
    );
}

#[test]
#[ignore = "longer randomized sweep; run explicitly with --ignored"]
fn long_randomized_sweep() {
    let expl = Explorer::new(Mode::Random {
        seed: 0x5cff,
        schedules: 20_000,
    });
    assert!(expl.explore(|| scenario(true)).failure.is_none());
}
