//! Scenario: WAL group-commit window vs crash truncation.
//!
//! Models the leader/rider group-commit protocol from `engine/wal.rs`: a
//! committer appends, then forces its LSN; one force caller becomes the
//! sync leader (writes the tail out with the lock dropped), the rest ride
//! on the condvar. A crash can land while the leader is off-lock in the
//! sync window.
//!
//! Two properties:
//! * **No crash-hang**: once `crashed` is set, every force call must return
//!   (with an error) rather than retry forever. The buggy variant keeps
//!   re-electing a leader whose sync can never advance `durable`, which the
//!   model flags as a [`Failure::StepLimit`] livelock.
//! * **Acked ⊆ durable**: a committer whose force returned `Ok` asserts its
//!   LSN is actually durable — a sync window cut short by the crash must
//!   not ack.

#![cfg(feature = "model")]

use pmp_common::sync::{LockClass, TrackedCondvar, TrackedMutex, TrackedMutexGuard};
use pmp_model::{render_trace, sched_point, spawn, Explorer, Failure, Mode};
use std::sync::Arc;

const WAL: LockClass = LockClass::new("model.wal.state");

#[derive(Default)]
struct Wal {
    tail: u64,
    durable: u64,
    syncing: bool,
    crashed: bool,
}

struct Shared {
    wal: TrackedMutex<Wal>,
    cv: TrackedCondvar,
}

fn append(sh: &Shared) -> u64 {
    let mut g = sh.wal.lock();
    g.tail += 1;
    g.tail
}

/// Force `lsn` durable. `fixed` controls whether a crash aborts the wait
/// (post-fix) or the caller keeps retrying the window (pre-fix hang).
fn force(sh: &Shared, lsn: u64, fixed: bool) -> Result<(), ()> {
    let mut g: TrackedMutexGuard<'_, Wal> = sh.wal.lock();
    loop {
        if g.durable >= lsn {
            return Ok(());
        }
        if g.crashed && fixed {
            return Err(());
        }
        if !g.syncing {
            // Become the sync leader: snapshot the tail, write it out with
            // the lock dropped (the historical crash window), re-take the
            // lock and publish.
            g.syncing = true;
            let to = g.tail;
            drop(g);
            sched_point("wal.sync-window");
            g = sh.wal.lock();
            g.syncing = false;
            if !g.crashed {
                g.durable = g.durable.max(to);
            }
            sh.cv.notify_all();
        } else {
            // Ride: wait for the leader's publish (or the crash broadcast).
            sh.cv.wait(&mut g);
        }
    }
}

fn scenario(fixed: bool) {
    let sh = Arc::new(Shared {
        wal: TrackedMutex::new(WAL, Wal::default()),
        cv: TrackedCondvar::new(),
    });

    for t in 0..2 {
        let sh = Arc::clone(&sh);
        spawn(&format!("committer-{t}"), move || {
            let lsn = append(&sh);
            if force(&sh, lsn, fixed).is_ok() {
                let g = sh.wal.lock();
                assert!(
                    g.durable >= lsn,
                    "acked commit not durable: lsn={lsn} durable={}",
                    g.durable
                );
            }
        });
    }

    {
        let sh = Arc::clone(&sh);
        spawn("crasher", move || {
            sched_point("wal.crash-point");
            let mut g = sh.wal.lock();
            g.crashed = true;
            // Truncate the unsynced tail back to the durable prefix.
            g.tail = g.durable;
            sh.cv.notify_all();
        });
    }
}

/// The retry loop is tight, so a modest budget separates livelock from the
/// legitimate schedules (tens of steps).
const STEP_BUDGET: usize = 800;

#[test]
fn fixed_force_survives_random_sweep() {
    let mut expl = Explorer::new(Mode::Random {
        seed: 0x3a1,
        schedules: 300,
    });
    expl.max_steps = STEP_BUDGET;
    let out = expl.explore(|| scenario(true));
    assert!(
        out.failure.is_none(),
        "fixed force must neither hang nor over-ack:\n{}",
        render_trace(&out.failure.unwrap().result)
    );
}

#[test]
fn fixed_force_survives_pct_sweep() {
    let mut expl = Explorer::new(Mode::Pct {
        seed: 0x3a2,
        depth: 3,
        schedules: 300,
    });
    expl.max_steps = STEP_BUDGET;
    assert!(expl.explore(|| scenario(true)).failure.is_none());
}

#[test]
fn buggy_force_livelocks_after_crash() {
    let mut expl = Explorer::new(Mode::Random {
        seed: 0x3a3,
        schedules: 500,
    });
    expl.max_steps = STEP_BUDGET;
    let found = expl
        .explore(|| scenario(false))
        .failure
        .expect("pre-fix force must be caught retrying forever after the crash");
    assert!(
        matches!(found.result.failure, Some(Failure::StepLimit { .. })),
        "expected a step-limit livelock, got:\n{}",
        render_trace(&found.result)
    );
}

#[test]
#[ignore = "longer randomized sweep; run explicitly with --ignored"]
fn long_randomized_sweep() {
    let mut expl = Explorer::new(Mode::Random {
        seed: 0x3aff,
        schedules: 10_000,
    });
    expl.max_steps = STEP_BUDGET;
    assert!(expl.explore(|| scenario(true)).failure.is_none());
}
