//! `pmp-model` — deterministic concurrency model checking for the
//! PolarDB-MP reproduction (DESIGN.md §14).
//!
//! The runtime (cooperative scheduler, virtual blocking, deterministic
//! timeouts) lives in `pmp_common::sync::model` so the tracked primitives
//! can reach it without a dependency cycle; this crate supplies the
//! *exploration* half:
//!
//! * [`RandomChooser`] — seeded uniform random walk over the schedule tree,
//! * [`PctChooser`] — PCT-style priority schedules with `d` preemption
//!   points (finds depth-`d` ordering bugs with provable probability),
//! * [`Explorer`] with [`Mode::Exhaustive`] — bounded DFS over every
//!   branch-point decision for small scenarios,
//! * [`replay`] / [`ReplayChooser`] — single-seed reproduction from a
//!   recorded decision vector,
//! * [`minimize`] — greedy schedule shrinking for check-in-able regression
//!   seeds,
//! * [`render_trace`] — failing-schedule printer: thread × yield-point
//!   history plus each thread's last step (the racing acquisition sites).
//!
//! The scenario corpus lives in `crates/model/tests/`; every scenario is an
//! executable model of one historically racy engine hot spot, with the
//! buggy pre-fix variant kept alongside the fixed one as a regression
//! oracle.
//!
//! Everything is feature-gated: without `--features model` this crate is
//! empty and costs nothing.

#[cfg(feature = "model")]
mod checker;

#[cfg(feature = "model")]
pub use checker::*;
