//! Schedule exploration, replay, minimization, and trace rendering over the
//! `pmp_common::sync::model` runtime.

use std::fmt::Write as _;

pub use pmp_common::sync::model::{run, spawn, Chooser, Event, Failure, RunResult};
pub use pmp_common::sync::sched_point;

/// Default per-schedule step budget. Scenarios are small (tens of yield
/// points per thread); hitting this means a livelock.
pub const DEFAULT_MAX_STEPS: usize = 5_000;

/// SplitMix64: tiny, seedable, and good enough to spread schedules. The
/// workspace has no real `rand` in this environment, and the checker must
/// not depend on one — determinism from the seed is the whole point.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// Uniform random walk: every branch point picks uniformly among the
/// runnable candidates. Cheap, surprisingly effective for shallow races.
pub struct RandomChooser {
    rng: SplitMix64,
}

impl RandomChooser {
    pub fn new(seed: u64) -> Self {
        RandomChooser {
            rng: SplitMix64::new(seed),
        }
    }
}

impl Chooser for RandomChooser {
    fn choose(&mut self, candidates: &[usize]) -> usize {
        self.rng.below(candidates.len())
    }
}

/// PCT-style priority chooser (Burckhardt et al.): each thread gets a
/// random static priority; the highest-priority runnable thread always
/// runs, except at `depth - 1` randomly placed change points where the
/// current leader is demoted below everyone. Finds any bug of preemption
/// depth `d` with probability ≥ 1/(n·k^(d-1)) per schedule.
pub struct PctChooser {
    rng: SplitMix64,
    /// `priorities[tid]` — higher runs first; assigned lazily on first
    /// sight so the chooser needs no thread-count up front.
    priorities: Vec<Option<u64>>,
    /// Branch-point indices at which the leader is demoted.
    change_points: Vec<usize>,
    /// Monotonically decreasing "lowest so far", for demotions.
    floor: u64,
    calls: usize,
}

impl PctChooser {
    /// `horizon` is the schedule-length estimate the change points are
    /// sampled from (use the scenario's typical step count, e.g. 256).
    pub fn new(seed: u64, depth: usize, horizon: usize) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut change_points = Vec::new();
        for _ in 1..depth.max(1) {
            change_points.push(rng.below(horizon.max(1)));
        }
        PctChooser {
            rng,
            priorities: Vec::new(),
            change_points,
            floor: 1 << 32,
            calls: 0,
        }
    }

    fn priority(&mut self, tid: usize) -> u64 {
        if tid >= self.priorities.len() {
            self.priorities.resize(tid + 1, None);
        }
        if self.priorities[tid].is_none() {
            // Static priorities start above the demotion floor.
            self.priorities[tid] = Some((1 << 33) + self.rng.next_u64() % (1 << 32));
        }
        self.priorities[tid].unwrap()
    }
}

impl Chooser for PctChooser {
    fn choose(&mut self, candidates: &[usize]) -> usize {
        let call = self.calls;
        self.calls += 1;
        let leader = (0..candidates.len())
            .max_by_key(|&i| self.priority(candidates[i]))
            .unwrap_or(0);
        if self.change_points.contains(&call) {
            // Demote the leader below every priority handed out so far and
            // fall through to the new leader.
            self.floor -= 1;
            let tid = candidates[leader];
            self.priorities[tid] = Some(self.floor);
            return (0..candidates.len())
                .max_by_key(|&i| self.priority(candidates[i]))
                .unwrap_or(0);
        }
        leader
    }
}

/// Replays a recorded decision vector (the `chosen` column of
/// `RunResult::decisions`). Past the end — or if the schedule diverges and
/// a recorded choice is out of range — it picks the first candidate, so a
/// prefix is enough to steer a run back into a failing region.
pub struct ReplayChooser {
    schedule: Vec<u8>,
    idx: usize,
}

impl ReplayChooser {
    pub fn new(schedule: Vec<u8>) -> Self {
        ReplayChooser { schedule, idx: 0 }
    }
}

impl Chooser for ReplayChooser {
    fn choose(&mut self, candidates: &[usize]) -> usize {
        let i = self.idx;
        self.idx += 1;
        self.schedule
            .get(i)
            .map(|&c| (c as usize).min(candidates.len() - 1))
            .unwrap_or(0)
    }
}

/// Replay a checked-in schedule against a scenario.
pub fn replay<F: FnOnce()>(schedule: &[u8], max_steps: usize, f: F) -> RunResult {
    run(
        Box::new(ReplayChooser::new(schedule.to_vec())),
        max_steps,
        f,
    )
}

/// Exploration strategy.
#[derive(Clone, Debug)]
pub enum Mode {
    /// `schedules` independent uniform random walks seeded from `seed`.
    Random { seed: u64, schedules: usize },
    /// `schedules` PCT priority schedules with `depth` preemption points.
    Pct {
        seed: u64,
        depth: usize,
        schedules: usize,
    },
    /// Depth-first enumeration of every branch-point decision, bounded by
    /// `max_schedules`. Complete for scenarios whose tree fits the bound.
    Exhaustive { max_schedules: usize },
}

/// A failing schedule, ready to minimize / check in / render.
#[derive(Debug)]
pub struct Found {
    pub result: RunResult,
    /// The decision vector that produced it (feed to [`replay`]).
    pub schedule: Vec<u8>,
    /// Human description of how it was found ("random seed 17", …).
    pub how: String,
}

/// Outcome of an exploration sweep.
#[derive(Debug)]
pub struct Exploration {
    /// Schedules actually executed.
    pub schedules: usize,
    /// First failure found, if any (the sweep stops at the first).
    pub failure: Option<Found>,
    /// True only for [`Mode::Exhaustive`] sweeps that enumerated the whole
    /// tree within their bound.
    pub complete: bool,
}

pub struct Explorer {
    pub mode: Mode,
    pub max_steps: usize,
}

impl Explorer {
    pub fn new(mode: Mode) -> Self {
        Explorer {
            mode,
            max_steps: DEFAULT_MAX_STEPS,
        }
    }

    /// Run the sweep, stopping at the first failing schedule.
    pub fn explore<F: Fn()>(&self, scenario: F) -> Exploration {
        match self.mode {
            Mode::Random { seed, schedules } => {
                for i in 0..schedules {
                    let s = seed.wrapping_add(i as u64);
                    let res = run(Box::new(RandomChooser::new(s)), self.max_steps, || {
                        scenario()
                    });
                    if res.failure.is_some() {
                        let schedule = res.decisions.iter().map(|&(_, c)| c).collect();
                        return Exploration {
                            schedules: i + 1,
                            failure: Some(Found {
                                result: res,
                                schedule,
                                how: format!("random seed {s}"),
                            }),
                            complete: false,
                        };
                    }
                }
                Exploration {
                    schedules,
                    failure: None,
                    complete: false,
                }
            }
            Mode::Pct {
                seed,
                depth,
                schedules,
            } => {
                for i in 0..schedules {
                    let s = seed.wrapping_add(i as u64);
                    // Corpus scenarios have tens of branch points, not
                    // hundreds; a tight horizon keeps the change points
                    // inside the actual schedule so preemptions land where
                    // they can matter.
                    let chooser = PctChooser::new(s, depth, 64);
                    let res = run(Box::new(chooser), self.max_steps, || scenario());
                    if res.failure.is_some() {
                        let schedule = res.decisions.iter().map(|&(_, c)| c).collect();
                        return Exploration {
                            schedules: i + 1,
                            failure: Some(Found {
                                result: res,
                                schedule,
                                how: format!("pct seed {s} depth {depth}"),
                            }),
                            complete: false,
                        };
                    }
                }
                Exploration {
                    schedules,
                    failure: None,
                    complete: false,
                }
            }
            Mode::Exhaustive { max_schedules } => {
                let mut prefix: Vec<u8> = Vec::new();
                let mut n = 0usize;
                loop {
                    let res = run(
                        Box::new(ReplayChooser::new(prefix.clone())),
                        self.max_steps,
                        || scenario(),
                    );
                    n += 1;
                    if res.failure.is_some() {
                        let schedule = res.decisions.iter().map(|&(_, c)| c).collect();
                        return Exploration {
                            schedules: n,
                            failure: Some(Found {
                                result: res,
                                schedule,
                                how: format!("exhaustive schedule #{n}"),
                            }),
                            complete: false,
                        };
                    }
                    // DFS successor: bump the deepest decision that still
                    // has an unexplored sibling, truncate the rest.
                    let next = res
                        .decisions
                        .iter()
                        .rposition(|&(options, chosen)| chosen + 1 < options);
                    match next {
                        Some(i) if n < max_schedules => {
                            prefix = res.decisions[..i].iter().map(|&(_, c)| c).collect();
                            prefix.push(res.decisions[i].1 + 1);
                        }
                        Some(_) => {
                            return Exploration {
                                schedules: n,
                                failure: None,
                                complete: false,
                            }
                        }
                        None => {
                            return Exploration {
                                schedules: n,
                                failure: None,
                                complete: true,
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Greedily shrink a failing schedule while it still produces a failure of
/// the same kind: drop a tail, then repeatedly try removing or lowering
/// individual decisions to fixpoint. The result is what gets checked in as
/// a regression seed.
pub fn minimize<F: Fn()>(schedule: &[u8], kind: &str, max_steps: usize, scenario: F) -> Vec<u8> {
    let still_fails = |cand: &[u8]| {
        let res = replay(cand, max_steps, || scenario());
        res.failure.map(|f| f.kind() == kind).unwrap_or(false)
    };
    let mut best = schedule.to_vec();
    loop {
        let mut changed = false;
        // Tail truncation (biggest wins first).
        while !best.is_empty() && still_fails(&best[..best.len() - 1]) {
            best.pop();
            changed = true;
        }
        // Single-decision removal.
        let mut i = 0;
        while i < best.len() {
            let mut cand = best.clone();
            cand.remove(i);
            if still_fails(&cand) {
                best = cand;
                changed = true;
            } else {
                i += 1;
            }
        }
        // Lower decisions toward 0 (prefer first-candidate choices).
        for i in 0..best.len() {
            while best[i] > 0 {
                let mut cand = best.clone();
                cand[i] -= 1;
                if still_fails(&cand) {
                    best = cand;
                    changed = true;
                } else {
                    break;
                }
            }
        }
        if !changed {
            return best;
        }
    }
}

/// Render a failing schedule for humans: the failure, the decision vector
/// (the replay seed), the full thread × yield-point history, and each
/// thread's final step — for a two-party race, those last two lines are the
/// racing acquisition sites.
pub fn render_trace(res: &RunResult) -> String {
    let mut out = String::new();
    let name =
        |tid: usize| -> &str { res.thread_names.get(tid).map(String::as_str).unwrap_or("?") };
    match &res.failure {
        Some(f) => {
            let _ = writeln!(out, "failure: {f:?}");
        }
        None => {
            let _ = writeln!(out, "schedule completed without failure");
        }
    }
    let seed: Vec<u8> = res.decisions.iter().map(|&(_, c)| c).collect();
    let _ = writeln!(out, "replay seed: {seed:?}");
    let _ = writeln!(out, "steps: {}", res.steps);
    let _ = writeln!(out, "trace (thread: op what):");
    for ev in &res.trace {
        let _ = writeln!(
            out,
            "  t{} {:<12} {:<16} {}",
            ev.tid,
            name(ev.tid),
            ev.op,
            ev.what
        );
    }
    let _ = writeln!(out, "last step per thread:");
    for tid in 0..res.thread_names.len() {
        if let Some(ev) = res.trace.iter().rev().find(|e| e.tid == tid) {
            let _ = writeln!(
                out,
                "  t{} {:<12} {:<16} {}",
                tid,
                name(tid),
                ev.op,
                ev.what
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_common::sync::{LockClass, TrackedMutex};
    use std::sync::Arc;

    #[test]
    fn random_walk_finds_double_claim() {
        let expl = Explorer::new(Mode::Random {
            seed: 7,
            schedules: 200,
        });
        let exploration = expl.explore(claim_race_scenario);
        let found = exploration.failure.expect("random walk finds the race");
        assert!(matches!(found.result.failure, Some(Failure::Panic { .. })));
        // The recorded schedule replays to the same failure kind.
        let again = replay(&found.schedule, DEFAULT_MAX_STEPS, claim_race_scenario);
        assert!(matches!(again.failure, Some(Failure::Panic { .. })));
    }

    /// Two threads racing an unsynchronized check-then-set around a
    /// sched_point: every strategy must find the interleaving where both
    /// observe `claimed == false`.
    fn claim_race_scenario() {
        let slot = Arc::new(TrackedMutex::new(LockClass::new("model.test.slot"), false));
        let winners = Arc::new(TrackedMutex::new(
            LockClass::new("model.test.winners"),
            0u32,
        ));
        for t in 0..2 {
            let slot = Arc::clone(&slot);
            let winners = Arc::clone(&winners);
            spawn(&format!("claimer-{t}"), move || {
                let free = { !*slot.lock() };
                if free {
                    sched_point("claim.window");
                    *slot.lock() = true;
                    let mut w = winners.lock();
                    *w += 1;
                    assert!(*w <= 1, "both claimers won the slot");
                }
            });
        }
    }

    #[test]
    fn exhaustive_enumerates_and_finds_it() {
        let expl = Explorer::new(Mode::Exhaustive {
            max_schedules: 5_000,
        });
        let exploration = expl.explore(claim_race_scenario);
        assert!(
            exploration.failure.is_some(),
            "exhaustive search must find the race ({} schedules, complete={})",
            exploration.schedules,
            exploration.complete
        );
    }

    #[test]
    fn pct_finds_it_at_depth_two() {
        let expl = Explorer::new(Mode::Pct {
            seed: 3,
            depth: 2,
            schedules: 500,
        });
        let exploration = expl.explore(claim_race_scenario);
        assert!(exploration.failure.is_some(), "pct(d=2) finds the race");
    }

    #[test]
    fn minimized_schedule_still_fails_and_is_shorter() {
        let expl = Explorer::new(Mode::Random {
            seed: 11,
            schedules: 500,
        });
        let found = expl
            .explore(claim_race_scenario)
            .failure
            .expect("race found");
        let min = minimize(
            &found.schedule,
            "panic",
            DEFAULT_MAX_STEPS,
            claim_race_scenario,
        );
        assert!(min.len() <= found.schedule.len());
        let res = replay(&min, DEFAULT_MAX_STEPS, claim_race_scenario);
        assert!(
            matches!(res.failure, Some(Failure::Panic { .. })),
            "minimized schedule lost the failure: {}",
            render_trace(&res)
        );
    }

    #[test]
    fn clean_scenario_explores_exhaustively_without_failure() {
        // Same shape but properly locked: check-then-set under one guard.
        let scenario = || {
            let slot = Arc::new(TrackedMutex::new(LockClass::new("model.test.slot2"), false));
            let winners = Arc::new(TrackedMutex::new(
                LockClass::new("model.test.winners2"),
                0u32,
            ));
            for t in 0..2 {
                let slot = Arc::clone(&slot);
                let winners = Arc::clone(&winners);
                spawn(&format!("claimer-{t}"), move || {
                    let mut s = slot.lock();
                    if !*s {
                        *s = true;
                        drop(s);
                        let mut w = winners.lock();
                        *w += 1;
                        assert!(*w <= 1, "both claimers won the slot");
                    }
                });
            }
        };
        let expl = Explorer::new(Mode::Exhaustive {
            max_schedules: 20_000,
        });
        let exploration = expl.explore(scenario);
        assert!(exploration.failure.is_none());
        assert!(
            exploration.complete,
            "fixed scenario should be exhaustively verified ({} schedules)",
            exploration.schedules
        );
    }

    #[test]
    fn render_trace_names_the_racing_sites() {
        let expl = Explorer::new(Mode::Random {
            seed: 7,
            schedules: 500,
        });
        let found = expl
            .explore(claim_race_scenario)
            .failure
            .expect("race found");
        let txt = render_trace(&found.result);
        assert!(txt.contains("replay seed"));
        assert!(txt.contains("claim.window"));
        assert!(txt.contains("last step per thread"));
    }
}
