//! Mechanism-level reimplementations of the paper's comparators (§2.3,
//! §5.3, §5.4).
//!
//! Aurora-MM and Taurus-MM are closed source and no longer publicly
//! testable (the paper itself compares against numbers quoted from the
//! Taurus-MM paper), and the shared-nothing systems in Fig 13 (TiDB,
//! CockroachDB, OceanBase) are far too large to rebuild. What the
//! comparisons actually hinge on, though, are three *mechanisms*, which we
//! implement faithfully over the same simulated fabric and storage that
//! PolarDB-MP runs on:
//!
//! * [`occ`] — Aurora-MM-style **optimistic concurrency control**: nodes
//!   update local caches freely and validate page versions at commit;
//!   cross-node conflicts surface as aborts that the application must
//!   retry ("it reports such write conflicts to the application as a
//!   deadlock error", §2.3).
//! * [`logreplay`] — Taurus-MM-style **pessimistic locking with log-replay
//!   coherence**: global page locks, but a node that needs a page modified
//!   elsewhere reads the base page from the page store and replays the
//!   pending log records ("this process typically involves storage I/Os …
//!   and the log application also consumes extra CPU cycles", §2.3), plus
//!   the vector-scalar clocks Taurus uses for ordering.
//! * [`shared_nothing`] — TiDB/CockroachDB/OceanBase-style **partitioned
//!   execution with two-phase commit**, including partitioned global
//!   secondary indexes (the Fig 13 workload: every GSI update becomes a
//!   multi-partition transaction).
//!
//! All three expose the same transaction-batch interface ([`Op`],
//! [`TxnOutcome`]) the workload driver uses, so the figures compare
//! mechanisms on identical terms.

pub mod common;
pub mod logreplay;
pub mod occ;
pub mod shared_nothing;

pub use common::{BaselineTable, Op, TxnOutcome};
pub use logreplay::LogReplayCluster;
pub use occ::OccCluster;
pub use shared_nothing::ShardedCluster;
