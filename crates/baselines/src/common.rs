//! Shared pieces of the baseline systems: the operation vocabulary, paged
//! key layout, and a node-side lock cache for the pessimistic baseline.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use pmp_common::{NodeId, PageId, Result, TableId};
use pmp_pmfs::{PLockFusion, PLockMode};
use pmp_rdma::precise_wait_ns;

/// One statement inside a baseline transaction. Baselines store a single
/// u64 value per key — enough to observe conflict behaviour and verify
/// invariants; the figures measure throughput shape, not SQL features.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    Read {
        table: TableId,
        key: u64,
    },
    Update {
        table: TableId,
        key: u64,
        value: u64,
    },
    Insert {
        table: TableId,
        key: u64,
        value: u64,
    },
}

impl Op {
    pub fn table(&self) -> TableId {
        match self {
            Op::Read { table, .. } | Op::Update { table, .. } | Op::Insert { table, .. } => *table,
        }
    }

    pub fn key(&self) -> u64 {
        match self {
            Op::Read { key, .. } | Op::Update { key, .. } | Op::Insert { key, .. } => *key,
        }
    }

    pub fn is_write(&self) -> bool {
        !matches!(self, Op::Read { .. })
    }
}

/// Result of one baseline transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnOutcome {
    Committed,
    /// OCC write conflict (Aurora-MM surfaces this as a deadlock error that
    /// the application must catch and retry, §2.3).
    Aborted,
}

/// Fixed-layout paged table: key `k` lives on page `k / rows_per_page`.
/// Page-granularity conflicts — the unit both Aurora-MM and Taurus-MM
/// contend on — follow directly.
#[derive(Clone, Copy, Debug)]
pub struct BaselineTable {
    pub id: TableId,
    pub rows_per_page: u64,
}

impl BaselineTable {
    pub fn page_of(&self, key: u64) -> u64 {
        key / self.rows_per_page
    }

    /// A cluster-unique page id for (table, page-index).
    pub fn page_id(&self, key: u64) -> PageId {
        PageId(((self.id.0 as u64) << 40) | self.page_of(key))
    }
}

/// Simulate CPU spent replaying one log record (Taurus-MM coherence path).
/// ~1.5µs per record is in line with physiological redo apply costs.
pub const REPLAY_NS_PER_RECORD: u64 = 1_500;

pub fn burn_replay_cpu(records: usize, scale: f64) {
    if records == 0 {
        return;
    }
    precise_wait_ns(((records as u64 * REPLAY_NS_PER_RECORD) as f64 * scale) as u64);
}

/// A miniature node-side lock cache for the log-replay baseline: Taurus-MM
/// also avoids re-asking the lock server for locks it still holds, so we
/// grant it the same courtesy (otherwise the comparison would punish it
/// for lock traffic rather than for its coherence path).
pub struct LockCache {
    node: NodeId,
    fusion: Arc<PLockFusion>,
    held: Mutex<HashMap<PageId, PLockMode>>,
    timeout: Duration,
}

impl LockCache {
    pub fn new(node: NodeId, fusion: Arc<PLockFusion>, timeout: Duration) -> Self {
        LockCache {
            node,
            fusion,
            held: Mutex::new(HashMap::new()),
            timeout,
        }
    }

    /// Acquire (or locally re-grant) `mode` on `page`. Unlike the engine's
    /// full manager this one is transaction-scoped-simple: locks persist
    /// until [`release_all`](Self::release_all) and upgrades go back to the
    /// fusion.
    pub fn acquire(&self, page: PageId, mode: PLockMode) -> Result<()> {
        {
            let held = self.held.lock();
            if let Some(h) = held.get(&page) {
                if h.covers(mode) {
                    return Ok(());
                }
            }
        }
        self.fusion.acquire(self.node, page, mode, self.timeout)?;
        self.held.lock().insert(page, mode);
        Ok(())
    }

    /// Release everything (end of transaction, eager 2PL release).
    pub fn release_all(&self) {
        let pages: Vec<PageId> = self.held.lock().drain().map(|(p, _)| p).collect();
        for p in pages {
            self.fusion.release(self.node, p);
        }
    }

    pub fn held(&self, page: PageId) -> Option<PLockMode> {
        self.held.lock().get(&page).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmp_common::LatencyConfig;
    use pmp_rdma::Fabric;

    #[test]
    fn page_layout_is_contiguous() {
        let t = BaselineTable {
            id: TableId(3),
            rows_per_page: 100,
        };
        assert_eq!(t.page_of(0), 0);
        assert_eq!(t.page_of(99), 0);
        assert_eq!(t.page_of(100), 1);
        assert_ne!(t.page_id(0), t.page_id(100));
        let other = BaselineTable {
            id: TableId(4),
            rows_per_page: 100,
        };
        assert_ne!(t.page_id(0), other.page_id(0), "tables must not collide");
    }

    #[test]
    fn op_accessors() {
        let t = TableId(1);
        let op = Op::Update {
            table: t,
            key: 5,
            value: 9,
        };
        assert_eq!(op.table(), t);
        assert_eq!(op.key(), 5);
        assert!(op.is_write());
        assert!(!Op::Read { table: t, key: 1 }.is_write());
    }

    #[test]
    fn lock_cache_regrants_and_releases() {
        let fusion = Arc::new(PLockFusion::new(Arc::new(
            pmp_repl::ReplicatedFabric::single(Arc::new(Fabric::new(LatencyConfig::disabled()))),
        )));
        let cache = LockCache::new(NodeId(1), Arc::clone(&fusion), Duration::from_secs(1));
        let p = PageId(9);
        cache.acquire(p, PLockMode::S).unwrap();
        cache.acquire(p, PLockMode::S).unwrap(); // local re-grant
        assert_eq!(fusion.stats().acquires.get(), 1);
        assert_eq!(cache.held(p), Some(PLockMode::S));

        cache.acquire(p, PLockMode::X).unwrap(); // upgrade goes to fusion
        assert_eq!(fusion.stats().acquires.get(), 2);

        cache.release_all();
        assert!(cache.held(p).is_none());
        assert!(fusion.holders(p).is_empty());
    }
}
