//! Shared-nothing partitioned baseline with two-phase commit (§2.2, §5.4).
//!
//! Models the TiDB / CockroachDB / OceanBase class of systems for the
//! global-secondary-index experiment (Fig 13): the primary table is
//! partitioned by primary key across the nodes, and **each GSI is
//! partitioned by its secondary key** — so inserting one row with K
//! indexes touches 1 + K partitions spread over the cluster and must run
//! as a distributed transaction.
//!
//! The 2PC cost model is the textbook one the paper invokes: a prepare
//! round (message to each remote participant + a durable prepare log
//! force) followed by a commit round (message each + the coordinator's
//! commit force). Participant forces within a phase happen in parallel on
//! real systems, so each phase charges one log-force latency, not one per
//! participant; per-participant messages are charged individually.

use std::collections::HashMap;

use parking_lot::{Mutex, RwLock};
use pmp_common::{Counter, LatencyConfig, Result, StorageLatencyConfig, TableId};
use pmp_rdma::{precise_wait_ns, Fabric};

use crate::common::{Op, TxnOutcome};

/// One partition: a key-value shard owned by one node, with per-partition
/// commit counters standing in for its local WAL.
#[derive(Debug, Default)]
struct Partition {
    rows: Mutex<HashMap<(TableId, u64), u64>>,
}

/// A table definition: how many GSIs hang off it.
#[derive(Clone, Debug)]
struct TableDef {
    /// Index tree ids, one per GSI (each partitioned by secondary key).
    gsi: Vec<TableId>,
}

#[derive(Debug, Default)]
pub struct ShardedStats {
    pub commits: Counter,
    pub single_partition: Counter,
    pub multi_partition: Counter,
    pub prepare_messages: Counter,
    pub log_forces: Counter,
}

/// The shared-nothing cluster.
pub struct ShardedCluster {
    fabric: Fabric,
    storage_cfg: StorageLatencyConfig,
    partitions: Vec<Partition>,
    tables: RwLock<HashMap<TableId, TableDef>>,
    next_table: Mutex<u32>,
    pub stats: ShardedStats,
}

impl ShardedCluster {
    pub fn new(nodes: usize, latency: LatencyConfig, storage: StorageLatencyConfig) -> Self {
        ShardedCluster {
            fabric: Fabric::new(latency),
            storage_cfg: storage,
            partitions: (0..nodes).map(|_| Partition::default()).collect(),
            tables: RwLock::new(HashMap::new()),
            next_table: Mutex::new(1),
            stats: ShardedStats::default(),
        }
    }

    pub fn node_count(&self) -> usize {
        self.partitions.len()
    }

    /// Create a table with `gsi_count` global secondary indexes. Returns
    /// the table id (indexes are internal).
    pub fn create_table(&self, gsi_count: usize) -> TableId {
        let mut next = self.next_table.lock();
        let id = TableId(*next);
        *next += 1;
        let gsi = (0..gsi_count)
            .map(|_| {
                let g = TableId(*next);
                *next += 1;
                g
            })
            .collect();
        self.tables.write().insert(id, TableDef { gsi });
        id
    }

    fn partition_of(&self, table: TableId, key: u64) -> usize {
        // Hash-partitioning; mix the table id in so co-keyed tables spread.
        let h = key
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(table.0 as u64);
        (h % self.partitions.len() as u64) as usize
    }

    /// Bulk load (no latency, no 2PC — administrative).
    pub fn load(&self, table: TableId, keys: impl Iterator<Item = (u64, u64)>) {
        let def = self.tables.read()[&table].clone();
        for (key, value) in keys {
            let p = self.partition_of(table, key);
            self.partitions[p].rows.lock().insert((table, key), value);
            for (i, g) in def.gsi.iter().enumerate() {
                let sec = secondary_of(value, i);
                let gp = self.partition_of(*g, sec);
                self.partitions[gp].rows.lock().insert((*g, sec), key);
            }
        }
    }

    /// Durable log write in a shared-nothing system = a consensus round
    /// (Raft/Paxos quorum replication in TiDB/CockroachDB/OceanBase),
    /// roughly an order of magnitude above a PolarFS append.
    const CONSENSUS_FACTOR: u64 = 10;

    fn force_log(&self) {
        self.stats.log_forces.inc();
        precise_wait_ns(
            self.storage_cfg
                .charge_ns(self.storage_cfg.sync_ns * Self::CONSENSUS_FACTOR),
        );
    }

    /// Execute a transaction coordinated by `node`. Write ops fan out to
    /// every partition they (and their GSI entries) live on.
    pub fn execute(&self, node: usize, ops: &[Op]) -> Result<TxnOutcome> {
        let tables = self.tables.read();
        // Plan: which (partition, table, key, value) writes happen where.
        let mut writes: Vec<(usize, TableId, u64, u64)> = Vec::new();
        let mut touched: Vec<usize> = Vec::new();
        for op in ops {
            self.fabric.charge_statement();
            let def = &tables[&op.table()];
            match op {
                Op::Read { table, key } => {
                    let p = self.partition_of(*table, *key);
                    if p != node {
                        self.fabric.rpc(48, || ()); // remote read round trip
                    }
                    touched.push(p);
                    let _ = self.partitions[p].rows.lock().get(&(*table, *key)).copied();
                }
                Op::Update { table, key, value } | Op::Insert { table, key, value } => {
                    writes.push((self.partition_of(*table, *key), *table, *key, *value));
                    for (i, g) in def.gsi.iter().enumerate() {
                        let sec = secondary_of(*value, i);
                        writes.push((self.partition_of(*g, sec), *g, sec, *key));
                    }
                }
            }
        }
        drop(tables);

        if writes.is_empty() {
            self.stats.commits.inc();
            return Ok(TxnOutcome::Committed);
        }

        let mut participants: Vec<usize> = writes.iter().map(|(p, ..)| *p).collect();
        participants.sort_unstable();
        participants.dedup();

        if participants.len() == 1 {
            // Fast path: one partition. Remote owners get a forwarding RPC
            // but still commit with a single consensus write — no real
            // shared-nothing system 2PCs a single-partition transaction.
            if participants[0] != node {
                self.fabric.rpc(96, || ());
            }
            for (p, table, key, value) in &writes {
                self.partitions[*p]
                    .rows
                    .lock()
                    .insert((*table, *key), *value);
            }
            self.force_log();
            self.stats.single_partition.inc();
            self.stats.commits.inc();
            return Ok(TxnOutcome::Committed);
        }

        // Two-phase commit. Each participant durably logs a prepare record
        // (a consensus round). The forces run in parallel in real systems,
        // but with a fixed worker pool the cluster-wide *throughput* cost is
        // the sum of participant work, which serial charging models.
        self.stats.multi_partition.inc();
        for &p in &participants {
            if p != node {
                self.stats.prepare_messages.inc();
                self.fabric.rpc(96, || ());
            }
            self.force_log(); // per-participant prepare consensus write
        }
        // Commit decision: coordinator forces its commit record, then
        // notifies participants (acks ride async).
        self.force_log();
        for &p in &participants {
            if p != node {
                self.fabric.rpc(48, || ());
            }
        }
        for (p, table, key, value) in &writes {
            self.partitions[*p]
                .rows
                .lock()
                .insert((*table, *key), *value);
        }
        self.stats.commits.inc();
        Ok(TxnOutcome::Committed)
    }

    /// Test helper: direct partition read.
    pub fn value(&self, table: TableId, key: u64) -> Option<u64> {
        let p = self.partition_of(table, key);
        let v = self.partitions[p].rows.lock().get(&(table, key)).copied();
        v
    }

    /// Test helper: where a GSI entry for (`table`, gsi `i`, secondary)
    /// lives and its stored primary key.
    pub fn gsi_value(&self, table: TableId, index: usize, secondary: u64) -> Option<u64> {
        let g = self.tables.read()[&table].gsi[index];
        let p = self.partition_of(g, secondary);
        let v = self.partitions[p].rows.lock().get(&(g, secondary)).copied();
        v
    }
}

/// Derive the i-th secondary key from a row value (the GSI workload packs
/// distinct secondaries per index from one value).
pub fn secondary_of(value: u64, index: usize) -> u64 {
    value.rotate_left(index as u32 * 8 + 1) ^ (index as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn cluster(nodes: usize) -> ShardedCluster {
        ShardedCluster::new(
            nodes,
            LatencyConfig::disabled(),
            StorageLatencyConfig::disabled(),
        )
    }

    #[test]
    fn insert_without_gsi_is_often_single_partition() {
        let c = cluster(4);
        let t = c.create_table(0);
        // Find a key owned by partition 0 and insert from node 0.
        let key = (0..1000u64)
            .find(|k| c.partition_of(t, *k) == 0)
            .expect("some key maps to partition 0");
        c.execute(
            0,
            &[Op::Insert {
                table: t,
                key,
                value: 7,
            }],
        )
        .unwrap();
        assert_eq!(c.stats.single_partition.get(), 1);
        assert_eq!(c.stats.multi_partition.get(), 0);
        assert_eq!(c.value(t, key), Some(7));
    }

    #[test]
    fn gsi_inserts_require_2pc() {
        let c = cluster(4);
        let t = c.create_table(2);
        c.execute(
            0,
            &[Op::Insert {
                table: t,
                key: 1,
                value: 99,
            }],
        )
        .unwrap();
        // Primary row and both GSI entries landed.
        assert_eq!(c.value(t, 1), Some(99));
        assert_eq!(c.gsi_value(t, 0, secondary_of(99, 0)), Some(1));
        assert_eq!(c.gsi_value(t, 1, secondary_of(99, 1)), Some(1));
        // 1 + 2 partitions were (almost certainly) distinct → 2PC, with
        // 2 forces instead of 1.
        assert!(c.stats.multi_partition.get() + c.stats.single_partition.get() == 1);
        if c.stats.multi_partition.get() == 1 {
            // One prepare consensus write per participant + the commit.
            assert!(c.stats.log_forces.get() >= 3);
        }
    }

    #[test]
    fn more_gsis_mean_more_prepare_messages() {
        let few = cluster(8);
        let t_few = few.create_table(1);
        for k in 0..50 {
            few.execute(
                0,
                &[Op::Insert {
                    table: t_few,
                    key: k,
                    value: k * 31,
                }],
            )
            .unwrap();
        }
        let many = cluster(8);
        let t_many = many.create_table(8);
        for k in 0..50 {
            many.execute(
                0,
                &[Op::Insert {
                    table: t_many,
                    key: k,
                    value: k * 31,
                }],
            )
            .unwrap();
        }
        assert!(
            many.stats.prepare_messages.get() > few.stats.prepare_messages.get(),
            "8 GSIs must produce more 2PC traffic than 1"
        );
        assert!(many.stats.log_forces.get() >= few.stats.log_forces.get());
    }

    #[test]
    fn reads_do_not_commit_via_2pc() {
        let c = cluster(2);
        let t = c.create_table(4);
        c.load(t, [(1, 10)].into_iter());
        c.execute(0, &[Op::Read { table: t, key: 1 }]).unwrap();
        assert_eq!(c.stats.multi_partition.get(), 0);
        assert_eq!(c.stats.log_forces.get(), 0);
    }

    #[test]
    fn concurrent_inserts_are_all_applied() {
        let c = Arc::new(cluster(4));
        let t = c.create_table(2);
        let handles: Vec<_> = (0..4)
            .map(|n| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for k in 0..100u64 {
                        let key = n as u64 * 1000 + k;
                        c.execute(
                            n,
                            &[Op::Insert {
                                table: t,
                                key,
                                value: key,
                            }],
                        )
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for n in 0..4u64 {
            for k in 0..100 {
                assert_eq!(c.value(t, n * 1000 + k), Some(n * 1000 + k));
            }
        }
        assert_eq!(c.stats.commits.get(), 400);
    }
}
