//! Taurus-MM-style pessimistic multi-master with log-replay coherence
//! (§2.3).
//!
//! Like PolarDB-MP, this baseline uses global page locks (we give it the
//! very same Lock Fusion PLock table plus a node-side lock cache, so lock
//! traffic is not the variable under test). The difference is the buffer
//! coherence path: there is **no distributed buffer pool**. "When a node
//! requests a page that has been modified by another node, it must request
//! both the page and corresponding logs from the page/log stores, and then
//! apply the logs to obtain the latest version of the page" — i.e. a
//! storage-latency read plus CPU burned per replayed record, versus
//! PolarDB-MP's single one-sided RDMA fetch.
//!
//! Transaction ordering uses Taurus's vector-scalar clocks (a compact
//! vector clock whose scalar component rides along on every message),
//! implemented in [`VsClock`].

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use pmp_common::{Counter, LatencyConfig, NodeId, Result, StorageLatencyConfig, TableId};
use pmp_pmfs::{PLockFusion, PLockMode};
use pmp_rdma::{precise_wait_ns, Fabric, Locality};

use crate::common::{burn_replay_cpu, BaselineTable, LockCache, Op, TxnOutcome};

/// Taurus-MM's vector-scalar clock: a vector clock over the nodes plus a
/// scalar that is the maximum component, piggybacked on messages so most
/// comparisons touch one integer instead of N.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VsClock {
    pub vector: Vec<u64>,
    pub scalar: u64,
}

impl VsClock {
    pub fn new(nodes: usize) -> Self {
        VsClock {
            vector: vec![0; nodes],
            scalar: 0,
        }
    }

    /// Local event on `node`: advance our component past everything seen.
    pub fn tick(&mut self, node: usize) -> u64 {
        let next = self.scalar + 1;
        self.vector[node] = next;
        self.scalar = next;
        next
    }

    /// Merge a received clock (message receipt).
    pub fn merge(&mut self, other: &VsClock) {
        for (a, b) in self.vector.iter_mut().zip(&other.vector) {
            *a = (*a).max(*b);
        }
        self.scalar = self.scalar.max(other.scalar);
    }

    /// Does this clock causally dominate (≥) `other`?
    pub fn dominates(&self, other: &VsClock) -> bool {
        // Scalar fast path: if our scalar is below any of theirs we cannot
        // dominate.
        if self.scalar < other.scalar {
            return false;
        }
        self.vector.iter().zip(&other.vector).all(|(a, b)| a >= b)
    }
}

/// One log record pending replay for a page.
#[derive(Clone, Copy, Debug)]
struct PageLogRec {
    version: u64,
    key: u64,
    value: u64,
}

/// Authoritative page + its log suffix (the page store applies logs in the
/// background, so a fetcher may replay up to `log.len()` records).
#[derive(Debug, Default)]
struct ServicePage {
    version: u64,
    /// Materialized base image at `base_version`.
    base_version: u64,
    base_rows: HashMap<u64, u64>,
    /// Records with versions in `(base_version, version]`.
    log: Vec<PageLogRec>,
}

impl ServicePage {
    /// Background page-store log application (we run it when the log grows
    /// long, modelling the paper's "page stores apply logs lazily").
    fn compact(&mut self) {
        for rec in self.log.drain(..) {
            self.base_rows.insert(rec.key, rec.value);
        }
        self.base_version = self.version;
    }
}

#[derive(Debug, Clone, Default)]
struct CachedPage {
    version: u64,
    populated: bool,
    rows: HashMap<u64, u64>,
}

struct ReplayNode {
    cache: Mutex<HashMap<(TableId, u64), CachedPage>>,
    locks: LockCache,
    clock: Mutex<VsClock>,
}

#[derive(Debug, Default)]
pub struct ReplayStats {
    pub commits: Counter,
    pub page_fetches: Counter,
    pub records_replayed: Counter,
    pub storage_reads: Counter,
}

/// Sharded page-service directory: `(table, page#) → service page`.
type ServiceMap = RwLock<HashMap<(TableId, u64), Arc<Mutex<ServicePage>>>>;

/// The log-replay (Taurus-MM-style) cluster.
pub struct LogReplayCluster {
    fabric: Arc<Fabric>,
    storage_cfg: StorageLatencyConfig,
    latency_scale: f64,
    tables: RwLock<HashMap<TableId, BaselineTable>>,
    service: ServiceMap,
    pub plock: Arc<PLockFusion>,
    nodes: Vec<ReplayNode>,
    pub stats: ReplayStats,
}

/// Compact a service page once this many records are pending.
const COMPACT_THRESHOLD: usize = 256;

impl LogReplayCluster {
    pub fn new(nodes: usize, latency: LatencyConfig, storage: StorageLatencyConfig) -> Self {
        let fabric = Arc::new(Fabric::new(latency));
        // Baselines run unreplicated: the facade is a passthrough.
        let plock = Arc::new(PLockFusion::new(Arc::new(
            pmp_repl::ReplicatedFabric::single(Arc::clone(&fabric)),
        )));
        LogReplayCluster {
            latency_scale: if latency.enabled { latency.scale } else { 0.0 },
            storage_cfg: storage,
            tables: RwLock::new(HashMap::new()),
            service: RwLock::new(HashMap::new()),
            nodes: (0..nodes)
                .map(|i| ReplayNode {
                    cache: Mutex::new(HashMap::new()),
                    locks: LockCache::new(
                        NodeId(i as u16),
                        Arc::clone(&plock),
                        Duration::from_secs(5),
                    ),
                    clock: Mutex::new(VsClock::new(nodes)),
                })
                .collect(),
            plock,
            fabric,
            stats: ReplayStats::default(),
        }
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn create_table(&self, id: TableId, rows_per_page: u64) -> BaselineTable {
        let t = BaselineTable { id, rows_per_page };
        self.tables.write().insert(id, t);
        t
    }

    pub fn load(&self, table: TableId, keys: impl Iterator<Item = (u64, u64)>) {
        let t = self.tables.read()[&table];
        let mut service = self.service.write();
        for (key, value) in keys {
            let page = service
                .entry((table, t.page_of(key)))
                .or_insert_with(|| Arc::new(Mutex::new(ServicePage::default())));
            page.lock().base_rows.insert(key, value);
        }
    }

    fn service_page(&self, table: TableId, page_no: u64) -> Arc<Mutex<ServicePage>> {
        if let Some(p) = self.service.read().get(&(table, page_no)) {
            return Arc::clone(p);
        }
        Arc::clone(
            self.service
                .write()
                .entry((table, page_no))
                .or_insert_with(|| Arc::new(Mutex::new(ServicePage::default()))),
        )
    }

    /// Bring the node's cached copy of a page up to date — *the* Taurus-MM
    /// coherence path: storage read (or log suffix fetch) + replay CPU.
    fn freshen(&self, node: usize, table: TableId, page_no: u64) {
        let nstate = &self.nodes[node];
        let service = self.service_page(table, page_no);
        let mut cache = nstate.cache.lock();
        let cached = cache.entry((table, page_no)).or_default();
        let s = service.lock();
        if cached.populated && cached.version == s.version {
            return; // already current
        }
        self.stats.page_fetches.inc();
        if !cached.populated || cached.version < s.base_version {
            // Full base page from the page store: storage latency.
            self.stats.storage_reads.inc();
            precise_wait_ns(self.storage_cfg.charge_ns(self.storage_cfg.read_ns));
            cached.rows = s.base_rows.clone();
            cached.version = s.base_version;
            cached.populated = true;
        } else {
            // Log suffix fetch from the log store (one round trip).
            self.fabric.rpc(64, || ());
        }
        // Replay every record newer than our copy.
        let pending: Vec<PageLogRec> = s
            .log
            .iter()
            .filter(|r| r.version > cached.version)
            .copied()
            .collect();
        drop(s);
        burn_replay_cpu(pending.len(), self.latency_scale);
        self.stats.records_replayed.add(pending.len() as u64);
        for rec in pending {
            cached.rows.insert(rec.key, rec.value);
            cached.version = cached.version.max(rec.version);
        }
    }

    /// Execute one transaction (2PL, commit always succeeds).
    pub fn execute(&self, node: usize, ops: &[Op]) -> Result<TxnOutcome> {
        let nstate = &self.nodes[node];
        let tables = self.tables.read();
        let mut wrote = false;

        let result = (|| -> Result<()> {
            for op in ops {
                self.fabric.charge_statement();
                let t = tables[&op.table()];
                let page_no = t.page_of(op.key());
                let mode = if op.is_write() {
                    PLockMode::X
                } else {
                    PLockMode::S
                };
                nstate.locks.acquire(t.page_id(op.key()), mode)?;
                self.freshen(node, t.id, page_no);
                match op {
                    Op::Read { .. } => {}
                    Op::Update { key, value, .. } | Op::Insert { key, value, .. } => {
                        wrote = true;
                        let service = self.service_page(t.id, page_no);
                        let mut s = service.lock();
                        let version = s.version + 1;
                        s.version = version;
                        s.log.push(PageLogRec {
                            version,
                            key: *key,
                            value: *value,
                        });
                        if s.log.len() >= COMPACT_THRESHOLD {
                            s.compact();
                        }
                        drop(s);
                        // Ship the log record (async wire cost is tiny; the
                        // force happens at commit).
                        self.fabric.bulk_write(48, Locality::Remote);
                        let mut cache = nstate.cache.lock();
                        let cached = cache.entry((t.id, page_no)).or_default();
                        cached.rows.insert(*key, *value);
                        cached.version = version;
                        cached.populated = true;
                    }
                }
            }
            Ok(())
        })();

        if wrote {
            // Commit: force the log (storage sync) and stamp the VS clock.
            precise_wait_ns(self.storage_cfg.charge_ns(self.storage_cfg.sync_ns));
            nstate.clock.lock().tick(node);
        }
        nstate.locks.release_all();
        result?;
        self.stats.commits.inc();
        Ok(TxnOutcome::Committed)
    }

    /// Latest committed value as the service sees it (test helper).
    pub fn service_value(&self, table: TableId, key: u64) -> Option<u64> {
        let t = self.tables.read()[&table];
        let page = self.service_page(table, t.page_of(key));
        let s = page.lock();
        s.log
            .iter()
            .rev()
            .find(|r| r.key == key)
            .map(|r| r.value)
            .or_else(|| s.base_rows.get(&key).copied())
    }

    pub fn node_clock(&self, node: usize) -> VsClock {
        self.nodes[node].clock.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(nodes: usize) -> LogReplayCluster {
        LogReplayCluster::new(
            nodes,
            LatencyConfig::disabled(),
            StorageLatencyConfig::disabled(),
        )
    }

    fn t() -> TableId {
        TableId(1)
    }

    #[test]
    fn vs_clock_ordering() {
        let mut a = VsClock::new(2);
        let mut b = VsClock::new(2);
        a.tick(0);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        b.merge(&a);
        b.tick(1);
        assert!(b.dominates(&a));
        assert!(!a.dominates(&b));
        // Concurrent clocks dominate neither way.
        let mut c = VsClock::new(2);
        c.tick(1);
        let mut d = VsClock::new(2);
        d.tick(0);
        assert!(!c.dominates(&d) && !d.dominates(&c));
    }

    #[test]
    fn writes_are_visible_cross_node_after_replay() {
        let c = cluster(2);
        c.create_table(t(), 10);
        c.load(t(), (0..100).map(|k| (k, 0)));

        c.execute(
            0,
            &[Op::Update {
                table: t(),
                key: 5,
                value: 7,
            }],
        )
        .unwrap();
        // Node 1 reads through the coherence path.
        c.execute(1, &[Op::Read { table: t(), key: 5 }]).unwrap();
        let cached = self_read(&c, 1, 5);
        assert_eq!(cached, Some(7), "node 1 must have replayed node 0's write");
        assert!(c.stats.records_replayed.get() >= 1);
    }

    fn self_read(c: &LogReplayCluster, node: usize, key: u64) -> Option<u64> {
        let tbl = c.tables.read()[&t()];
        let cache = c.nodes[node].cache.lock();
        cache
            .get(&(t(), tbl.page_of(key)))
            .and_then(|p| p.rows.get(&key).copied())
    }

    #[test]
    fn pessimistic_writes_never_abort() {
        use std::sync::Arc as StdArc;
        let c = StdArc::new(cluster(4));
        c.create_table(t(), 4);
        c.load(t(), (0..16).map(|k| (k, 0)));
        let handles: Vec<_> = (0..4)
            .map(|n| {
                let c = StdArc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        let out = c
                            .execute(
                                n,
                                &[Op::Update {
                                    table: TableId(1),
                                    key: i % 16,
                                    value: i,
                                }],
                            )
                            .unwrap();
                        assert_eq!(out, TxnOutcome::Committed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.stats.commits.get(), 400);
    }

    #[test]
    fn compaction_folds_log_into_base() {
        let c = cluster(1);
        c.create_table(t(), 1000);
        c.load(t(), [(1, 0)].into_iter());
        for i in 0..(COMPACT_THRESHOLD as u64 + 10) {
            c.execute(
                0,
                &[Op::Update {
                    table: t(),
                    key: 1,
                    value: i,
                }],
            )
            .unwrap();
        }
        assert_eq!(c.service_value(t(), 1), Some(COMPACT_THRESHOLD as u64 + 9));
        let page = c.service_page(t(), 0);
        assert!(
            page.lock().log.len() < COMPACT_THRESHOLD,
            "compaction must have run"
        );
    }

    #[test]
    fn replay_count_tracks_cross_node_churn() {
        let c = cluster(2);
        c.create_table(t(), 10);
        c.load(t(), (0..10).map(|k| (k, 0)));
        // Node 0 writes 20 records to one page; node 1 then reads it once.
        for i in 0..20 {
            c.execute(
                0,
                &[Op::Update {
                    table: t(),
                    key: i % 10,
                    value: i,
                }],
            )
            .unwrap();
        }
        c.execute(1, &[Op::Read { table: t(), key: 0 }]).unwrap();
        assert!(
            c.stats.records_replayed.get() >= 20,
            "all pending records must be replayed on first access"
        );
    }
}
