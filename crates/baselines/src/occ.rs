//! Aurora-MM-style optimistic multi-master (§2.3).
//!
//! Each node reads through a local page cache and buffers writes locally.
//! At commit, the written pages are validated against the authoritative
//! storage versions: any page changed by another node since it was read
//! aborts the whole transaction, which Aurora-MM reports to the
//! application as a deadlock error to be retried. There is no cross-node
//! locking and no wait — the whole cost of conflict is paid in aborted
//! work, which is why Aurora-MM's four-node write throughput can fall
//! below a single node's (§2.3, Fig 12).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use pmp_common::{Counter, LatencyConfig, NodeId, Result, StorageLatencyConfig, TableId};
use pmp_rdma::{precise_wait_ns, Fabric};

use crate::common::{BaselineTable, Op, TxnOutcome};

/// Authoritative page state in (simulated) shared storage.
#[derive(Debug, Default)]
struct StoragePage {
    version: u64,
    rows: HashMap<u64, u64>,
}

#[derive(Debug, Clone, Default)]
struct CachedPage {
    version: u64,
    rows: HashMap<u64, u64>,
}

/// Node-local state.
struct OccNode {
    cache: Mutex<HashMap<(TableId, u64), CachedPage>>,
}

/// Aggregate meters.
#[derive(Debug, Default)]
pub struct OccStats {
    pub commits: Counter,
    pub aborts: Counter,
    pub storage_reads: Counter,
    pub validations: Counter,
}

/// Authoritative storage directory: `(table, page#) → storage page`.
type StorageMap = RwLock<HashMap<(TableId, u64), Arc<Mutex<StoragePage>>>>;

/// The OCC multi-master cluster.
pub struct OccCluster {
    fabric: Fabric,
    storage_cfg: StorageLatencyConfig,
    tables: RwLock<HashMap<TableId, BaselineTable>>,
    storage: StorageMap,
    nodes: Vec<OccNode>,
    pub stats: OccStats,
}

impl OccCluster {
    pub fn new(nodes: usize, latency: LatencyConfig, storage: StorageLatencyConfig) -> Self {
        OccCluster {
            fabric: Fabric::new(latency),
            storage_cfg: storage,
            tables: RwLock::new(HashMap::new()),
            storage: RwLock::new(HashMap::new()),
            nodes: (0..nodes)
                .map(|_| OccNode {
                    cache: Mutex::new(HashMap::new()),
                })
                .collect(),
            stats: OccStats::default(),
        }
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn create_table(&self, id: TableId, rows_per_page: u64) -> BaselineTable {
        let t = BaselineTable { id, rows_per_page };
        self.tables.write().insert(id, t);
        t
    }

    /// Bulk load without latency charges (test/bench setup).
    pub fn load(&self, table: TableId, keys: impl Iterator<Item = (u64, u64)>) {
        let t = self.tables.read()[&table];
        let mut storage = self.storage.write();
        for (key, value) in keys {
            let page = storage
                .entry((table, t.page_of(key)))
                .or_insert_with(|| Arc::new(Mutex::new(StoragePage::default())));
            page.lock().rows.insert(key, value);
        }
    }

    fn storage_page(&self, table: TableId, page_no: u64) -> Arc<Mutex<StoragePage>> {
        if let Some(p) = self.storage.read().get(&(table, page_no)) {
            return Arc::clone(p);
        }
        Arc::clone(
            self.storage
                .write()
                .entry((table, page_no))
                .or_insert_with(|| Arc::new(Mutex::new(StoragePage::default()))),
        )
    }

    fn charge_storage_read(&self) {
        self.stats.storage_reads.inc();
        precise_wait_ns(self.storage_cfg.charge_ns(self.storage_cfg.read_ns));
    }

    fn charge_commit_force(&self) {
        precise_wait_ns(self.storage_cfg.charge_ns(self.storage_cfg.sync_ns));
    }

    /// Execute one transaction on `node`. Returns `Aborted` on a write
    /// conflict (the caller — like an Aurora-MM application — decides
    /// whether to retry).
    pub fn execute(&self, node: usize, ops: &[Op]) -> Result<TxnOutcome> {
        let node_id = NodeId(node as u16);
        let _ = node_id;
        let nstate = &self.nodes[node];
        let tables = self.tables.read();

        // Read phase: serve from cache, miss → storage read; remember the
        // base version of every page we write.
        let mut base_versions: HashMap<(TableId, u64), u64> = HashMap::new();
        let mut local_writes: Vec<(TableId, u64, u64, u64)> = Vec::new(); // (table, page, key, value)
        for op in ops {
            self.fabric.charge_statement();
            let t = tables[&op.table()];
            let page_no = t.page_of(op.key());
            let cache_key = (t.id, page_no);
            {
                let mut cache = nstate.cache.lock();
                if let std::collections::hash_map::Entry::Vacant(slot) = cache.entry(cache_key) {
                    let storage = self.storage_page(t.id, page_no);
                    self.charge_storage_read();
                    let s = storage.lock();
                    slot.insert(CachedPage {
                        version: s.version,
                        rows: s.rows.clone(),
                    });
                }
                let cached = cache.get(&cache_key).expect("just inserted");
                base_versions.entry(cache_key).or_insert(cached.version);
                // Reads are served from the cached copy.
                let _ = cached.rows.get(&op.key());
            }
            match op {
                Op::Read { .. } => {}
                Op::Update { key, value, .. } | Op::Insert { key, value, .. } => {
                    local_writes.push((t.id, page_no, *key, *value));
                }
            }
        }

        if local_writes.is_empty() {
            self.stats.commits.inc();
            return Ok(TxnOutcome::Committed);
        }

        // Validation + write phase at storage: lock written pages in a
        // canonical order, compare versions, then apply atomically.
        let mut written_pages: Vec<(TableId, u64)> =
            local_writes.iter().map(|(t, p, _, _)| (*t, *p)).collect();
        written_pages.sort();
        written_pages.dedup();

        // One round-trip ships the whole write batch.
        self.fabric.rpc(64 * written_pages.len(), || ());
        self.stats.validations.inc();

        let handles: Vec<(TableId, u64, Arc<Mutex<StoragePage>>)> = written_pages
            .iter()
            .map(|&(t, p)| (t, p, self.storage_page(t, p)))
            .collect();
        let mut guards = Vec::with_capacity(handles.len());
        for (t, p, h) in &handles {
            guards.push(((*t, *p), h.lock()));
        }
        let conflict = guards
            .iter()
            .any(|(key, g)| g.version != base_versions[key]);
        if conflict {
            drop(guards);
            // Aborted work: drop stale cached copies so the retry re-reads.
            let mut cache = nstate.cache.lock();
            for key in &written_pages {
                cache.remove(key);
            }
            self.stats.aborts.inc();
            return Ok(TxnOutcome::Aborted);
        }

        // Commit: redo force, then install.
        self.charge_commit_force();
        for (t, p, key, value) in &local_writes {
            let (_, guard) = guards
                .iter_mut()
                .find(|((gt, gp), _)| gt == t && gp == p)
                .expect("guard held for every written page");
            guard.rows.insert(*key, *value);
        }
        let mut cache = nstate.cache.lock();
        for ((t, p), guard) in guards.iter_mut() {
            guard.version += 1;
            // Keep our own cache coherent with our commit.
            cache.insert(
                (*t, *p),
                CachedPage {
                    version: guard.version,
                    rows: guard.rows.clone(),
                },
            );
        }
        drop(cache);
        drop(guards);
        self.stats.commits.inc();
        Ok(TxnOutcome::Committed)
    }

    /// Read a committed value straight from storage (test helper).
    pub fn storage_value(&self, table: TableId, key: u64) -> Option<u64> {
        let t = self.tables.read()[&table];
        let page = self.storage_page(table, t.page_of(key));
        let v = page.lock().rows.get(&key).copied();
        v
    }

    pub fn abort_rate(&self) -> f64 {
        let a = self.stats.aborts.get() as f64;
        let c = self.stats.commits.get() as f64;
        if a + c == 0.0 {
            0.0
        } else {
            a / (a + c)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(nodes: usize) -> OccCluster {
        OccCluster::new(
            nodes,
            LatencyConfig::disabled(),
            StorageLatencyConfig::disabled(),
        )
    }

    fn t() -> TableId {
        TableId(1)
    }

    #[test]
    fn single_node_commits() {
        let c = cluster(1);
        c.create_table(t(), 10);
        c.load(t(), (0..100).map(|k| (k, 0)));
        let out = c
            .execute(
                0,
                &[
                    Op::Read { table: t(), key: 1 },
                    Op::Update {
                        table: t(),
                        key: 1,
                        value: 42,
                    },
                ],
            )
            .unwrap();
        assert_eq!(out, TxnOutcome::Committed);
        assert_eq!(c.storage_value(t(), 1), Some(42));
    }

    #[test]
    fn cross_node_same_page_write_aborts() {
        let c = cluster(2);
        c.create_table(t(), 10);
        c.load(t(), (0..100).map(|k| (k, 0)));

        // Both nodes cache page 0.
        c.execute(0, &[Op::Read { table: t(), key: 1 }]).unwrap();
        c.execute(1, &[Op::Read { table: t(), key: 2 }]).unwrap();

        // Node 0 commits a write to page 0 → version bump.
        assert_eq!(
            c.execute(
                0,
                &[Op::Update {
                    table: t(),
                    key: 1,
                    value: 1
                }]
            )
            .unwrap(),
            TxnOutcome::Committed
        );
        // Node 1's write to the *same page* (different row!) must abort —
        // exactly the page-level false sharing the paper highlights.
        assert_eq!(
            c.execute(
                1,
                &[Op::Update {
                    table: t(),
                    key: 2,
                    value: 2
                }]
            )
            .unwrap(),
            TxnOutcome::Aborted
        );
        // After the abort the cache was invalidated; the retry succeeds.
        assert_eq!(
            c.execute(
                1,
                &[Op::Update {
                    table: t(),
                    key: 2,
                    value: 2
                }]
            )
            .unwrap(),
            TxnOutcome::Committed
        );
        assert!(c.abort_rate() > 0.0);
    }

    #[test]
    fn disjoint_pages_never_conflict() {
        let c = cluster(2);
        c.create_table(t(), 10);
        c.load(t(), (0..100).map(|k| (k, 0)));
        for round in 0..20 {
            assert_eq!(
                c.execute(
                    0,
                    &[Op::Update {
                        table: t(),
                        key: 5,
                        value: round
                    }]
                )
                .unwrap(),
                TxnOutcome::Committed
            );
            assert_eq!(
                c.execute(
                    1,
                    &[Op::Update {
                        table: t(),
                        key: 55,
                        value: round
                    }]
                )
                .unwrap(),
                TxnOutcome::Committed
            );
        }
        assert_eq!(c.stats.aborts.get(), 0);
    }

    #[test]
    fn multi_page_validation_is_atomic() {
        let c = cluster(2);
        c.create_table(t(), 10);
        c.load(t(), (0..100).map(|k| (k, 0)));
        // Node 0 stages a cross-page txn.
        c.execute(
            0,
            &[
                Op::Read { table: t(), key: 5 },
                Op::Read {
                    table: t(),
                    key: 55,
                },
            ],
        )
        .unwrap();
        // Node 1 invalidates one of the two pages.
        c.execute(
            1,
            &[Op::Update {
                table: t(),
                key: 55,
                value: 9,
            }],
        )
        .unwrap();
        // Node 0's cross-page write must abort wholesale; neither write
        // lands.
        let out = c
            .execute(
                0,
                &[
                    Op::Update {
                        table: t(),
                        key: 5,
                        value: 1,
                    },
                    Op::Update {
                        table: t(),
                        key: 56,
                        value: 1,
                    },
                ],
            )
            .unwrap();
        assert_eq!(out, TxnOutcome::Aborted);
        assert_eq!(c.storage_value(t(), 5), Some(0));
        assert_eq!(c.storage_value(t(), 56), Some(0));
    }

    #[test]
    fn concurrent_hammering_preserves_last_writer_consistency() {
        use std::sync::Arc as StdArc;
        let c = StdArc::new(cluster(4));
        c.create_table(t(), 4);
        c.load(t(), (0..64).map(|k| (k, 0)));
        let handles: Vec<_> = (0..4)
            .map(|n| {
                let c = StdArc::clone(&c);
                std::thread::spawn(move || {
                    let mut commits = 0;
                    for i in 0..200u64 {
                        let key = i % 64;
                        if c.execute(
                            n,
                            &[Op::Update {
                                table: TableId(1),
                                key,
                                value: i,
                            }],
                        )
                        .unwrap()
                            == TxnOutcome::Committed
                        {
                            commits += 1;
                        }
                    }
                    commits
                })
            })
            .collect();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0);
        assert_eq!(
            c.stats.commits.get(),
            total,
            "stats must agree with observed commits"
        );
    }
}
