//! Standalone (std-only) replica of the `lbp/*` contention benchmark from
//! crates/bench/benches/micro_components.rs, compiled with bare `rustc -O`
//! so it can run in environments without a cargo registry. Same workload:
//! K threads x Zipf(0.99) lookups over a 2048-page working set against a
//! 1024-frame pool, finishing loads on misses and evicting under capacity
//! pressure. Differences from the real code: std Mutex/Condvar instead of
//! parking_lot, payload is a dummy [u8; 64] instead of a 16KiB page.
//!
//! Build and run (no cargo needed):
//!
//! ```text
//! rustc -O --edition 2021 tools/lbp_contention_harness.rs -o /tmp/lbp_harness
//! /tmp/lbp_harness
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::Instant;

/// Lock with a collision count: a failed try_lock means another thread held
/// the lock at that instant. This is a core-count-independent measure of
/// contention (on a 1-CPU box wall clock cannot show it, but collisions
/// still happen whenever a holder is preempted mid-critical-section).
static COLLISIONS: AtomicU64 = AtomicU64::new(0);
static LOCK_OPS: AtomicU64 = AtomicU64::new(0);

fn lock_counted<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    LOCK_OPS.fetch_add(1, Ordering::Relaxed);
    match m.try_lock() {
        Ok(g) => g,
        Err(_) => {
            COLLISIONS.fetch_add(1, Ordering::Relaxed);
            m.lock().unwrap()
        }
    }
}

const WORKING_SET: usize = 2048;
const CAPACITY: usize = 1024;
const OPS_PER_THREAD: usize = 2000;
const EVICT_EVERY: usize = 256;
const ZIPF_THETA: f64 = 0.99;
const SHARD_COUNT: usize = 16;
const HASH_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

type PageId = u64;

fn zipf_cdf(n: usize, theta: f64) -> Vec<f64> {
    let mut weights: Vec<f64> = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for w in weights.iter_mut() {
        acc += *w / total;
        *w = acc;
    }
    weights
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn sample(cdf: &[f64], state: &mut u64) -> usize {
    let u = (xorshift(state) >> 11) as f64 / (1u64 << 53) as f64;
    cdf.partition_point(|&c| c < u)
}

struct Frame {
    _payload: [u8; 64],
    referenced: AtomicBool,
}

enum Slot {
    Loading,
    Ready(Arc<Frame>),
}

fn new_frame() -> Arc<Frame> {
    Arc::new(Frame {
        _payload: [0u8; 64],
        referenced: AtomicBool::new(true),
    })
}

// ---- sharded pool (mirrors crates/engine/src/lbp.rs) ----

struct Shard {
    map: Mutex<HashMap<PageId, Slot>>,
    load_cv: Condvar,
}

struct ShardedLbp {
    shards: Vec<Shard>,
    len: AtomicUsize,
    evict_cursor: AtomicUsize,
    capacity: usize,
}

impl ShardedLbp {
    fn new(capacity: usize) -> Self {
        ShardedLbp {
            shards: (0..SHARD_COUNT)
                .map(|_| Shard {
                    map: Mutex::new(HashMap::new()),
                    load_cv: Condvar::new(),
                })
                .collect(),
            len: AtomicUsize::new(0),
            evict_cursor: AtomicUsize::new(0),
            capacity,
        }
    }

    fn shard(&self, id: PageId) -> &Shard {
        &self.shards[(id.wrapping_mul(HASH_MULT) >> 32) as usize & (SHARD_COUNT - 1)]
    }

    fn lookup_or_load(&self, id: PageId) {
        let shard = self.shard(id);
        let mut map = lock_counted(&shard.map);
        loop {
            match map.get(&id) {
                Some(Slot::Ready(frame)) => {
                    frame.referenced.store(true, Ordering::Relaxed);
                    return;
                }
                Some(Slot::Loading) => {
                    map = shard.load_cv.wait(map).unwrap();
                }
                None => {
                    map.insert(id, Slot::Loading);
                    self.len.fetch_add(1, Ordering::Relaxed);
                    drop(map);
                    // The storage round-trip would happen here.
                    map = lock_counted(&shard.map);
                    map.insert(id, Slot::Ready(new_frame()));
                    shard.load_cv.notify_all();
                    return;
                }
            }
        }
    }

    fn maybe_evict(&self, want: usize) {
        if self.len.load(Ordering::Relaxed) <= self.capacity {
            return;
        }
        let start = self.evict_cursor.fetch_add(1, Ordering::Relaxed);
        let mut evicted = 0;
        for i in 0..SHARD_COUNT {
            if evicted >= want {
                return;
            }
            let shard = &self.shards[(start + i) % SHARD_COUNT];
            let mut map = lock_counted(&shard.map);
            let keys: Vec<PageId> = map.keys().copied().collect();
            for key in keys {
                if evicted >= want {
                    break;
                }
                if let Some(Slot::Ready(frame)) = map.get(&key) {
                    if frame.referenced.swap(false, Ordering::Relaxed) {
                        continue;
                    }
                    map.remove(&key);
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    evicted += 1;
                }
            }
        }
    }
}

// ---- single-mutex pool (the pre-sharding design) ----

struct MutexLbp {
    map: Mutex<HashMap<PageId, Slot>>,
    load_cv: Condvar,
    evict_cursor: AtomicUsize,
    capacity: usize,
}

impl MutexLbp {
    fn new(capacity: usize) -> Self {
        MutexLbp {
            map: Mutex::new(HashMap::new()),
            load_cv: Condvar::new(),
            evict_cursor: AtomicUsize::new(0),
            capacity,
        }
    }

    fn lookup_or_load(&self, id: PageId) {
        let mut map = lock_counted(&self.map);
        loop {
            match map.get(&id) {
                Some(Slot::Ready(frame)) => {
                    frame.referenced.store(true, Ordering::Relaxed);
                    return;
                }
                Some(Slot::Loading) => {
                    map = self.load_cv.wait(map).unwrap();
                }
                None => {
                    map.insert(id, Slot::Loading);
                    drop(map);
                    map = lock_counted(&self.map);
                    map.insert(id, Slot::Ready(new_frame()));
                    self.load_cv.notify_all();
                    return;
                }
            }
        }
    }

    fn maybe_evict(&self, want: usize) {
        let mut map = lock_counted(&self.map);
        if map.len() <= self.capacity {
            return;
        }
        let keys: Vec<PageId> = map.keys().copied().collect();
        if keys.is_empty() {
            return;
        }
        let start = self.evict_cursor.fetch_add(1, Ordering::Relaxed) % keys.len();
        let mut evicted = 0;
        for i in 0..keys.len() {
            if evicted >= want {
                break;
            }
            let key = keys[(start + i) % keys.len()];
            if let Some(Slot::Ready(frame)) = map.get(&key) {
                if frame.referenced.swap(false, Ordering::Relaxed) {
                    continue;
                }
                map.remove(&key);
                evicted += 1;
            }
        }
    }
}

impl ShardedLbp {
    /// Mirrors Lbp::dirty_frames: one shard locked at a time.
    fn scan(&self) -> usize {
        let mut seen = 0;
        for shard in &self.shards {
            let map = lock_counted(&shard.map);
            for slot in map.values() {
                if let Slot::Ready(f) = slot {
                    seen += f.referenced.load(Ordering::Relaxed) as usize;
                }
            }
        }
        seen
    }
}

impl MutexLbp {
    /// The pre-sharding dirty_frames: whole pool under one lock.
    fn scan(&self) -> usize {
        let map = lock_counted(&self.map);
        let mut seen = 0;
        for slot in map.values() {
            if let Slot::Ready(f) = slot {
                seen += f.referenced.load(Ordering::Relaxed) as usize;
            }
        }
        seen
    }
}

fn run_round(threads: usize, op: &(impl Fn(PageId) + Sync), evict: &(impl Fn() + Sync)) {
    let cdf = zipf_cdf(WORKING_SET, ZIPF_THETA);
    thread::scope(|s| {
        for t in 0..threads {
            let cdf = &cdf;
            s.spawn(move || {
                let mut rng = 0x9E37_79B9u64.wrapping_add(t as u64 * 0x517C_C1B7);
                for i in 0..OPS_PER_THREAD {
                    let id = 1 + sample(cdf, &mut rng) as u64;
                    op(id);
                    if i % EVICT_EVERY == EVICT_EVERY - 1 {
                        evict();
                    }
                }
            });
        }
    });
}

fn measure(label: &str, threads: usize, round: impl Fn()) {
    // Warm up, then take the best of 7 rounds (min is the right statistic
    // for a contention benchmark: it is the run least disturbed by the OS).
    for _ in 0..3 {
        round();
    }
    let mut best = f64::INFINITY;
    let (c0, l0) = (
        COLLISIONS.load(Ordering::Relaxed),
        LOCK_OPS.load(Ordering::Relaxed),
    );
    for _ in 0..7 {
        let start = Instant::now();
        round();
        best = best.min(start.elapsed().as_secs_f64());
    }
    let collisions = COLLISIONS.load(Ordering::Relaxed) - c0;
    let lock_ops = LOCK_OPS.load(Ordering::Relaxed) - l0;
    let ops = (threads * OPS_PER_THREAD) as f64;
    println!(
        "{label:<28} {threads} threads: {:>9.1} ns/op  ({:>7.2} ms/round, {:.2} Mops/s, \
         {:.3}% lock collisions)",
        best * 1e9 / ops,
        best * 1e3,
        ops / best / 1e6,
        collisions as f64 * 100.0 / lock_ops.max(1) as f64
    );
}

fn main() {
    println!(
        "LBP contention harness: {WORKING_SET}-page Zipf({ZIPF_THETA}) working set, \
         {CAPACITY}-frame pool, {OPS_PER_THREAD} ops/thread, evict every {EVICT_EVERY}"
    );
    for &threads in &[1usize, 2, 4, 8] {
        let sharded = ShardedLbp::new(CAPACITY);
        measure("lbp/sharded lookup", threads, || {
            run_round(
                threads,
                &|id| sharded.lookup_or_load(id),
                &|| sharded.maybe_evict(8),
            )
        });
        let single = MutexLbp::new(CAPACITY);
        measure("lbp/single-mutex lookup", threads, || {
            run_round(
                threads,
                &|id| single.lookup_or_load(id),
                &|| single.maybe_evict(8),
            )
        });
    }

    // Lookups racing a flusher: a background thread continuously runs the
    // dirty_frames-style scan while K threads do lookups. The pre-sharding
    // scan holds the one pool lock for the whole pool; the sharded scan
    // holds one shard at a time, so lookups slip between shards.
    println!();
    for &threads in &[1usize, 4, 8] {
        let sharded = ShardedLbp::new(CAPACITY);
        run_round(threads.max(2), &|id| sharded.lookup_or_load(id), &|| ());
        measure("lbp/sharded lookup+scan", threads, || {
            let stop = AtomicBool::new(false);
            thread::scope(|s| {
                s.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        std::hint::black_box(sharded.scan());
                    }
                });
                run_round(
                    threads,
                    &|id| sharded.lookup_or_load(id),
                    &|| sharded.maybe_evict(8),
                );
                stop.store(true, Ordering::Relaxed);
            });
        });
        let single = MutexLbp::new(CAPACITY);
        run_round(threads.max(2), &|id| single.lookup_or_load(id), &|| ());
        measure("lbp/single-mutex lookup+scan", threads, || {
            let stop = AtomicBool::new(false);
            thread::scope(|s| {
                s.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        std::hint::black_box(single.scan());
                    }
                });
                run_round(
                    threads,
                    &|id| single.lookup_or_load(id),
                    &|| single.maybe_evict(8),
                );
                stop.store(true, Ordering::Relaxed);
            });
        });
    }
}
